(** Minimal JSON parsing plus the two CI gates: the bench-trajectory
    gate over [BENCH.json] and the certificate gate over the combined
    [repro certify all --json] document.

    The repo deliberately carries no JSON dependency - the emitters in
    [bin/repro.ml] and {!Core.Trace} are hand-rolled prints - so the
    reader side is hand-rolled too: a small recursive-descent parser
    covering exactly the JSON the suite emits (objects, arrays,
    strings with backslash escapes, numbers, booleans, null). *)

(** {1 JSON values} *)

(** A parsed JSON value.  Numbers are uniformly [float] - the suite's
    integral counters are small enough to round-trip exactly. *)
type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list  (** members in source order *)

val parse : string -> (t, string) result
(** Parse one complete JSON document.  Trailing input (beyond
    whitespace) is an error, as is any malformed construct; the error
    string names the byte offset. *)

(** {1 Accessors}

    All accessors are total: a shape mismatch yields [None], never an
    exception, so gate code can probe optional fields freely. *)

val member : string -> t -> t option
(** [member k v] is the value of key [k] when [v] is an object that
    has it. *)

val arr : t -> t list option
(** The elements, when the value is an array. *)

val num : t -> float option
(** The number, when the value is one. *)

val str : t -> string option
(** The string, when the value is one. *)

val num_at : string list -> t -> float option
(** [num_at path v] descends through nested objects along [path] and
    returns the number at the end, if every step exists. *)

(** {1 Gate results} *)

(** The outcome of a gate run: hard failures, informational notes, and
    the number of individual comparisons performed. *)
type gate = {
  regressions : string list;
      (** hard failures - the caller should exit nonzero *)
  notes : string list;
      (** informational: improvements and additions beyond the
          baseline, each a prompt to refresh it *)
  checked : int;  (** individual comparisons performed *)
}

val report : ?label:string -> gate -> string
(** Render a gate outcome as a line-oriented report: a [label]
    headline (default ["bench gate"]) with the comparison and failure
    counts, one [REGRESSION] line per failure, one [note] line per
    note. *)

val ok : gate -> bool
(** A gate passes iff it found no regression - notes never fail it. *)

(** {1 The bench-trajectory gate} *)

val default_tolerance : float
(** Relative tolerance on modeled times (0.05): times are simulated,
    so drift only comes from code changes, and the tolerance only
    absorbs intentional cost-model adjustments. *)

val gate : ?tolerance:float -> baseline:t -> current:t -> unit -> gate
(** Compare a freshly emitted [BENCH.json] ([current]) against the
    committed [bench/baseline.json] ([baseline]):

    - per (benchmark, device, dataset) row, each modeled time
      (unopt/opt/reuse/pack) may not exceed the baseline by more than
      [tolerance];
    - per (benchmark, dataset, variant) footprint, the allocation
      count, peak live bytes and modeled DRAM traffic must be
      monotone non-increasing - exact counters, so any increase is a
      regression by definition;
    - a capped pool's high-water mark must not exceed its cap
      (checked on the current record alone);
    - per benchmark, the packing pass's [pack_stats] must hold its
      ground: [arenas], [packed] and [holes] (certified lifetime
      holes) may only grow, [unpacked] (undecidable placements) may
      only shrink;
    - a benchmark present in the baseline must stay present.

    Improvements beyond tolerance and new benchmarks are notes. *)

(** {1 The pack-order gate} *)

val pack_order_gate : firstfit:t -> colour:t -> unit -> gate
(** Compare the colour-placement bench record against a first-fit run
    of the same tree (the [--pack-order] A/B).  The planner commits a
    colour plan only when its extent is provably no larger than
    first-fit's, so this re-checks the guarantee on the executed
    numbers, with no tolerance:

    - per (benchmark, dataset), the pack variant's executed arena
      extent ([pack.arena_bytes]) may not exceed first-fit's;
    - per benchmark, colour's [pack_stats] coverage ([arenas],
      [packed], [holes]) may not be below first-fit's.

    Datasets where colour's extent is strictly smaller are notes. *)

(** {1 The certificate gate} *)

val cert_gate : baseline:t -> current:t -> unit -> gate
(** Compare a freshly emitted combined certificate document ([repro
    certify all --json], the output of {!val:Core.Certify.check}
    serialized per pass) against the committed
    [bench/certs-baseline.json].  Certificates are exact, so there is
    no tolerance; per (benchmark, pass, obligation id):

    - a benchmark, pass, or obligation present in the baseline must
      stay present;
    - an obligation's verdict may not weaken (proved > concretized >
      failed);
    - a pass's [emitted] and [proved] counts may not decrease;
    - any failed obligation in the current run is a regression
      outright, baseline or not.

    Strengthened verdicts, new obligations, new passes and new
    benchmarks are notes - a prompt to refresh the baseline with
    [dune exec bin/repro.exe -- certify all --json >
    bench/certs-baseline.json]. *)
