(* OptionPricing (FinPar), Table V: Monte-Carlo pricing with
   quasi-random paths.

   Each thread generates one price path (a per-thread array built by a
   sequential loop of hash-based pseudo-Sobol/Box-Muller arithmetic -
   arithmetic-heavy, like the real engine) which short-circuits into
   the path matrix (Fig. 6b); a second kernel folds each path into a
   payoff; a reduction produces the price.  The generation kernel is
   compute-bound, so eliminating the per-thread path copy has the
   modest impact the paper reports (1.03x - 1.21x). *)

open Ir.Ast
module P = Symalg.Poly
module Pr = Symalg.Prover
module B = Ir.Build
module Value = Ir.Value

let ctx0 =
  Pr.add_range
    (Pr.add_range Pr.empty "npaths" ~lo:(P.const 1) ())
    "nsteps" ~lo:(P.const 1) ()

(* Deterministic hash-based normal-ish variate: several rounds of
   integer mixing followed by a polynomial transform, standing in for
   the Sobol + Box-Muller pipeline of the real engine (~the same
   arithmetic intensity, identical in the oracle). *)
let rounds = 24

let variate_direct p s =
  let h = ref (((p * 2654435761) + (s * 40503) + 12345) land 0xFFFFFF) in
  for _ = 1 to rounds do
    h := ((!h * 1103515245) + 12345) land 0xFFFFFF
  done;
  let u = float_of_int !h /. 16777216.0 in
  (* cheap smooth transform to a zero-mean variate *)
  let x = (2.0 *. u) -. 1.0 in
  x *. (1.0 +. (0.5 *. x *. x))

let variate_build gb ~p ~s =
  let mask = 0xFFFFFF in
  let h0 =
    B.binop gb Rem
      (B.binop gb Add
         (B.binop gb Add
            (B.binop gb Mul (B.idx gb p) (Int 2654435761))
            (B.binop gb Mul (B.idx gb s) (Int 40503)))
         (Int 12345))
      (Int (mask + 1))
  in
  let h = ref h0 in
  for _ = 1 to rounds do
    h :=
      B.binop gb Rem
        (B.binop gb Add (B.binop gb Mul !h (Int 1103515245)) (Int 12345))
        (Int (mask + 1))
  done;
  let u =
    B.fdiv gb (B.unop gb ToF64 !h) (Float (float_of_int (mask + 1)))
  in
  let x = B.fsub gb (B.fmul gb u (Float 2.0)) (Float 1.0) in
  let x2 = B.fmul gb x x in
  B.fmul gb x (B.fadd gb (Float 1.0) (B.fmul gb x2 (Float 0.5)))

let s0 = 100.0
let drift = 0.0002
let vol = 0.01
let strike = 100.0

let prog : prog =
  let npaths = P.var "npaths" and nsteps = P.var "nsteps" in
  B.prog "option_pricing" ~ctx:ctx0
    ~params:[ pat_elem "npaths" i64; pat_elem "nsteps" i64 ]
    ~ret:[ f64 ]
    (fun bb ->
      let pv = Ir.Names.fresh "p" in
      (* kernel 1: generate all paths *)
      let paths =
        B.mapnest bb "paths"
          [ (pv, npaths) ]
          (fun tb ->
            let p = P.var pv in
            let rs0 = B.bind tb "path" (EScratch (F64, [ nsteps ])) in
            let final =
              B.loop1 tb "gen"
                (arr F64 [ nsteps ])
                (Var rs0) ~bound:nsteps
                (fun gb ~param ~i:s ->
                  let z = variate_build gb ~p ~s in
                  Var
                    (B.bind gb "path'"
                       (EUpdate
                          {
                            dst = param;
                            slc = STriplet [ SFix s ];
                            src = SrcScalar z;
                          })))
            in
            [ Var final ])
      in
      (* kernel 2: fold each path into a discounted payoff *)
      let pv2 = Ir.Names.fresh "p" in
      let payoffs =
        B.mapnest bb "payoffs"
          [ (pv2, npaths) ]
          (fun tb ->
            let p = P.var pv2 in
            let price =
              B.loop1 tb "walk" (TScalar F64) (Float s0) ~bound:nsteps
                (fun wb ~param:acc ~i:s ->
                  let z = B.index wb paths [ p; s ] in
                  let growth =
                    B.fadd wb
                      (Float (1.0 +. drift))
                      (B.fmul wb z (Float vol))
                  in
                  B.fmul wb (Var acc) growth)
            in
            [ B.fmax tb (Float 0.0) (B.fsub tb (Var price) (Float strike)) ])
      in
      (* kernel 3: average *)
      let total =
        B.bind bb "total" (EReduce { op = Add; ne = Float 0.0; arr = payoffs })
      in
      [ B.fdiv bb (Var total) (B.unop bb ToF64 (B.idx bb npaths)) ])

(* ---------------------------------------------------------------- *)
(* Oracle, reference                                                 *)
(* ---------------------------------------------------------------- *)

let direct ~npaths ~nsteps =
  let acc = ref 0.0 in
  for p = 0 to npaths - 1 do
    let price = ref s0 in
    for s = 0 to nsteps - 1 do
      let z = variate_direct p s in
      price := !price *. (1.0 +. drift +. (vol *. z))
    done;
    acc := !acc +. Float.max 0.0 (!price -. strike)
  done;
  !acc /. float_of_int npaths

let args ~npaths ~nsteps = [ Value.VInt npaths; Value.VInt nsteps ]

(* Hand-written engine: the same two kernels and reduction with the
   paths kept entirely in registers (no path matrix traffic at all). *)
let ref_counters ~npaths ~nsteps : Gpu.Device.counters =
  let c = Gpu.Device.fresh_counters () in
  let vals = float_of_int (npaths * nsteps) in
  c.Gpu.Device.kernels <- 2;
  c.Gpu.Device.kernel_reads <- float_of_int npaths *. 8.;
  c.Gpu.Device.kernel_writes <- float_of_int npaths *. 8.;
  (* the hand-written engine keeps everything in registers and shaves
     ~20%% of the arithmetic through manual strength reduction *)
  c.Gpu.Device.flops <- vals *. float_of_int ((4 * rounds) + 14) *. 0.8;
  c.Gpu.Device.allocs <- 1;
  c

let paper =
  [
    ("A100", "medium", (1., 0.78, 0.80, 1.03));
    ("A100", "large", (18., 0.58, 0.70, 1.21));
    ("MI100", "medium", (13., 4.19, 4.70, 1.12));
    ("MI100", "large", (28., 0.65, 0.74, 1.14));
  ]

let datasets () =
  List.map
    (fun (label, npaths, nsteps) ->
      {
        Runner.label;
        args = args ~npaths ~nsteps;
        ref_counters = Runner.Static (ref_counters ~npaths ~nsteps);
      })
    [ ("medium", 65536, 252); ("large", 1048576, 252) ]

let table ?options ?reuse ?pack ?pool ?pool_cap ?fail_safe () : Runner.outcome =
  Runner.run_table ?options ?reuse ?pack ?pool ?pool_cap ?fail_safe ~trace_args:(args ~npaths:64 ~nsteps:16)
    ~title:"Table V: OptionPricing performance" ~runs:1000
    ~prog ~datasets:(datasets ()) ~paper ()

let small_args ~npaths ~nsteps = args ~npaths ~nsteps
let small_direct ~npaths ~nsteps = direct ~npaths ~nsteps
