(* Needleman-Wunsch (Rodinia), the paper's running example and Table I.

   The n x n dynamic-programming matrix (n = q*b + 1) is kept flat; each
   wavefront step processes the m blocks of one anti-diagonal of the
   blocked matrix in parallel.  The generalized LMAD slices of section
   III-B describe the read sets (the vertical and horizontal bars
   adjacent to each block) and the write set (the blocks themselves):

     W     = woff         + {(m : n*b - b), (b : n), (b : 1)}
     Rvert = woff - n - 1 + {(m : n*b - b), (b+1 : n)}
     Rhoriz= woff - n     + {(m : n*b - b), (b : 1)}

   Short-circuiting must prove W disjoint from Rvert and Rhoriz (the
   Fig. 9 obligation) to construct each anti-diagonal's blocks directly
   in the matrix, eliminating the per-step copy.

   The substitution score is computed on the fly from the cell's flat
   position (a fixed hash), so the IR program, the direct OCaml oracle
   and the reference model all agree on the workload. *)

open Ir.Ast
module P = Symalg.Poly
module Pr = Symalg.Prover
module Lmad = Lmads.Lmad
module B = Ir.Build
module Value = Ir.Value

let score_mod = 19
let score_bias = 9.0

(* The paper's datasets use b = 16 (Rodinia's BLOCK_SIZE). *)
let block_size = 16

let ctx0 =
  let c = P.const in
  let ctx = Pr.empty in
  let ctx = Pr.add_range ctx "q" ~lo:(c 2) () in
  let ctx = Pr.add_range ctx "b" ~lo:(c 2) () in
  Pr.add_eq ctx "n" (P.add (P.mul (P.var "q") (P.var "b")) P.one)

(* One wavefront step: given the current matrix variable [a], the block
   count [m] and the flat offset [woff] of the first block of the
   anti-diagonal, slice the bars, compute the blocks in parallel, and
   write them back with the LMAD update. *)
let diag_step bb ~a ~m ~woff =
  let n = P.var "n" and bP = P.var "b" in
  (* freshen all binder names: this function is instantiated once per
     matrix half, and binders must be unique program-wide *)
  let kv = Ir.Names.fresh "k" in
  let rv_ = Ir.Names.fresh "r" and cv_ = Ir.Names.fresh "c" in
  let blkr = Ir.Names.fresh "blkr" and blkc = Ir.Names.fresh "blkc" in
  let nb_b = P.sub (P.mul n bP) bP in
  let rv =
    B.bind bb "rvert"
      (ESlice
         ( a,
           SLmad
             (Lmad.make
                (P.sub woff (P.add n P.one))
                [ Lmad.dim m nb_b; Lmad.dim (P.add bP P.one) n ]) ))
  in
  let rh =
    B.bind bb "rhoriz"
      (ESlice
         ( a,
           SLmad
             (Lmad.make (P.sub woff n) [ Lmad.dim m nb_b; Lmad.dim bP P.one ])
         ))
  in
  let x =
    B.mapnest bb "x"
      [ (kv, m) ]
      (fun tb ->
        let blk0 = B.bind tb "blk" (EScratch (F64, [ bP; bP ])) in
        let blk_names =
          B.loop tb "rows"
            [ (blkr, arr F64 [ bP; bP ], Var blk0) ]
            ~var:rv_ ~bound:bP
            (fun rb ->
              let cols =
                B.loop rb "cols"
                  [ (blkc, arr F64 [ bP; bP ], Var blkr) ]
                  ~var:cv_ ~bound:bP
                  (fun cb ->
                    let r = P.var rv_ and c = P.var cv_ and k = P.var kv in
                    let rz = B.cmp cb CEq (B.idx cb r) (Int 0) in
                    let cz = B.cmp cb CEq (B.idx cb c) (Int 0) in
                    let up =
                      B.if_ cb "up" rz
                        (fun ib -> [ B.index ib rh [ k; c ] ])
                        (fun ib ->
                          [ B.index ib blkc [ P.sub r P.one; c ] ])
                    in
                    let left =
                      B.if_ cb "left" cz
                        (fun ib -> [ B.index ib rv [ k; P.add r P.one ] ])
                        (fun ib ->
                          [ B.index ib blkc [ r; P.sub c P.one ] ])
                    in
                    let diag =
                      B.if_ cb "diag" rz
                        (fun ib ->
                          let v =
                            B.if_ ib "dc" cz
                              (fun jb -> [ B.index jb rv [ k; P.zero ] ])
                              (fun jb ->
                                [ B.index jb rh [ k; P.sub c P.one ] ])
                          in
                          List.map (fun v -> Var v) v)
                        (fun ib ->
                          let v =
                            B.if_ ib "dc" cz
                              (fun jb -> [ B.index jb rv [ k; r ] ])
                              (fun jb ->
                                [
                                  B.index jb blkc
                                    [ P.sub r P.one; P.sub c P.one ];
                                ])
                          in
                          List.map (fun v -> Var v) v)
                    in
                    let up = Var (List.hd up) and left = Var (List.hd left) in
                    let diag = Var (List.hd diag) in
                    (* substitution score from the flat cell position *)
                    let flat =
                      P.sum [ woff; P.mul k nb_b; P.mul r n; c ]
                    in
                    let fl = B.idx cb flat in
                    let h = B.binop cb Mul fl (Int 31) in
                    let h = B.binop cb Add h (Int 7) in
                    let h = B.binop cb Rem h (Int score_mod) in
                    let s = B.unop cb ToF64 h in
                    let s = B.binop cb Sub s (Float score_bias) in
                    let cand1 = B.fadd cb diag s in
                    let cand2 = B.fsub cb up (Var "penalty") in
                    let cand3 = B.fsub cb left (Var "penalty") in
                    let cell = B.fmax cb cand1 (B.fmax cb cand2 cand3) in
                    let blk' =
                      B.bind cb "blkc2"
                        (EUpdate
                           {
                             dst = blkc;
                             slc = STriplet [ SFix r; SFix c ];
                             src = SrcScalar cell;
                           })
                    in
                    [ Var blk' ])
              in
              [ Var (List.hd cols) ])
        in
        [ Var (List.hd blk_names) ])
  in
  let w =
    Lmad.make woff
      [ Lmad.dim m nb_b; Lmad.dim bP n; Lmad.dim bP P.one ]
  in
  B.bind bb "a_next" (EUpdate { dst = a; slc = SLmad w; src = SrcArr x })

let prog : prog =
  let n = P.var "n" and q = P.var "q" and bP = P.var "b" in
  let nn = P.mul n n in
  B.prog "nw" ~ctx:ctx0
    ~params:
      [
        pat_elem "q" i64;
        pat_elem "b" i64;
        pat_elem "n" i64;
        pat_elem "penalty" f64;
        pat_elem "a" (arr F64 [ nn ]);
      ]
    ~ret:[ arr F64 [ nn ] ]
    (fun bb ->
      (* first half: anti-diagonals 0 .. q-1, m = i+1 blocks *)
      let half1 =
        B.loop bb "h1"
          [ ("a1", arr F64 [ nn ], Var "a") ]
          ~var:"i" ~bound:q
          (fun lb ->
            let i = P.var "i" in
            let woff = P.sum [ P.mul i bP; n; P.one ] in
            let a' = diag_step lb ~a:"a1" ~m:(P.add i P.one) ~woff in
            [ Var a' ])
      in
      (* second half: anti-diagonals q .. 2q-2, m = q-1-s blocks *)
      let half2 =
        B.loop bb "h2"
          [ ("a2", arr F64 [ nn ], Var (List.hd half1)) ]
          ~var:"s"
          ~bound:(P.sub q P.one)
          (fun lb ->
            let s = P.var "s" in
            let woff =
              P.sum
                [
                  P.mul (P.add s P.one) (P.mul bP n);
                  P.mul (P.sub q P.one) bP;
                  n;
                  P.one;
                ]
            in
            let a' =
              diag_step lb ~a:"a2" ~m:(P.sub (P.sub q P.one) s) ~woff
            in
            [ Var a' ])
      in
      [ Var (List.hd half2) ])

(* ---------------------------------------------------------------- *)
(* Inputs and the direct OCaml oracle                                *)
(* ---------------------------------------------------------------- *)

let score flat = float_of_int (((flat * 31) + 7) mod score_mod) -. score_bias

let input ~n ~penalty =
  let a = Array.make (n * n) 0.0 in
  for i = 1 to n - 1 do
    a.(i) <- -.(float_of_int i *. penalty);
    a.(i * n) <- -.(float_of_int i *. penalty)
  done;
  a

(* Straightforward sequential DP: the golden implementation of Fig. 2. *)
let direct ~n ~penalty (a0 : float array) : float array =
  let f = Array.copy a0 in
  for r = 1 to n - 1 do
    for c = 1 to n - 1 do
      let flat = (r * n) + c in
      let cand1 = f.(((r - 1) * n) + c - 1) +. score flat in
      let cand2 = f.(((r - 1) * n) + c) -. penalty in
      let cand3 = f.((r * n) + c - 1) -. penalty in
      f.(flat) <- Float.max cand1 (Float.max cand2 cand3)
    done
  done;
  f

let args ~q ~b ~penalty ~shell =
  let n = (q * b) + 1 in
  [
    Value.VInt q;
    Value.VInt b;
    Value.VInt n;
    Value.VFloat penalty;
    (if shell then Value.VArr (Value.shell F64 [ n * n ])
     else Value.VArr (Value.of_floats [ n * n ] (input ~n ~penalty)));
  ]

(* ---------------------------------------------------------------- *)
(* The Rodinia reference model                                       *)
(* ---------------------------------------------------------------- *)

(* Rodinia's hand-written NW: one kernel per anti-diagonal per half
   (2q - 1 launches), each block reading its two bars and, unlike the
   on-the-fly scoring of the Futhark version, the b*b slice of the
   *reference* similarity matrix from global memory; everything is
   computed in shared memory and the b*b block written back in place
   (no copies). *)
let ref_counters ~q ~b : Gpu.Device.counters =
  let c = Gpu.Device.fresh_counters () in
  let blocks = float_of_int (q * q) in
  let bf = float_of_int b in
  c.Gpu.Device.kernels <- (2 * q) - 1;
  c.Gpu.Device.kernel_reads <-
    blocks *. ((2. *. bf) +. 1. +. (bf *. bf)) *. 8.;
  c.Gpu.Device.kernel_writes <- blocks *. bf *. bf *. 8.;
  c.Gpu.Device.flops <- blocks *. bf *. bf *. 8.;
  c.Gpu.Device.allocs <- 2;
  c

(* ---------------------------------------------------------------- *)
(* Table I                                                           *)
(* ---------------------------------------------------------------- *)

let paper =
  [
    ("A100", "8192", (9., 0.99, 1.16, 1.17));
    ("A100", "16384", (21., 0.96, 1.19, 1.24));
    ("A100", "32768", (58., 1.04, 1.36, 1.31));
    ("MI100", "8192", (15., 0.71, 0.88, 1.24));
    ("MI100", "16384", (44., 0.64, 0.78, 1.21));
    ("MI100", "32768", (325., 1.01, 1.14, 1.13));
  ]

let datasets () =
  List.map
    (fun size ->
      let q = size / block_size in
      {
        Runner.label = string_of_int size;
        args = args ~q ~b:block_size ~penalty:10.0 ~shell:true;
        ref_counters = Runner.Static (ref_counters ~q ~b:block_size);
      })
    [ 8192; 16384; 32768 ]

let table ?options ?reuse ?pack ?pool ?pool_cap ?fail_safe () : Runner.outcome =
  Runner.run_table ?options ?reuse ?pack ?pool ?pool_cap ?fail_safe
    ~trace_args:(args ~q:3 ~b:4 ~penalty:10.0 ~shell:false)
    ~title:"Table I: NW performance" ~runs:1000 ~prog
    ~datasets:(datasets ()) ~paper ()

(* Reduced-size instance for full-mode validation in the test suite. *)
let small_args ~q ~b = args ~q ~b ~penalty:10.0 ~shell:false

let small_direct ~q ~b =
  let n = (q * b) + 1 in
  direct ~n ~penalty:10.0 (input ~n ~penalty:10.0)
