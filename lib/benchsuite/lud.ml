(* Blocked LU decomposition (Rodinia LUD), Table II.

   The n x n matrix (n = q*b) is processed along the block diagonal
   (Fig. 10a): at step k the diagonal block is factored (green), the
   perimeter row (yellow) and column (blue) blocks are updated with it,
   and every interior (red) block receives a rank-b update.

   Memory behaviour mirrors the paper's observations:
   - the *yellow* and *red* results short-circuit into the matrix
     (their write-backs become no-ops) - the red case exercises the
     2-D cross-thread refinement of the index analysis;
   - the *blue* blocks are kept in a temporary that the interior kernel
     reads afterwards (coalesced-access layout), so they are not lastly
     used at their write-back and remain a copy;
   - the diagonal block is loaded from the region it is written to; the
     paper's analysis conservatively keeps its copy ("the green and
     blue blocks are not computed in-place"), but our prover's
     triangular-bound saturation discharges the single-thread
     cross-thread obligation, so the *green* factorization also runs in
     place here.

   Validation: blocked LU equals unblocked Doolittle elimination; the
   oracle runs Doolittle directly on a diagonally dominant input. *)

open Ir.Ast
module P = Symalg.Poly
module Pr = Symalg.Prover
module Lmad = Lmads.Lmad
module B = Ir.Build
module Value = Ir.Value

let block_size = 16

let ctx0 =
  let c = P.const in
  let ctx = Pr.empty in
  let ctx = Pr.add_range ctx "q" ~lo:(c 2) () in
  let ctx = Pr.add_range ctx "b" ~lo:(c 2) () in
  Pr.add_eq ctx "n" (P.mul (P.var "q") (P.var "b"))

let blk_t = arr F64 [ P.var "b"; P.var "b" ]

(* Scalar update of a [b][b] block accumulator. *)
let set_cell cb ~blk ~r ~c v =
  B.bind cb "blk'"
    (EUpdate { dst = blk; slc = STriplet [ SFix r; SFix c ]; src = SrcScalar v })

(* Load the b x b block whose top-left cell sits at flat offset
   [base] of matrix [mat] into a fresh scratch accumulator. *)
let load_block tb ~mat ~base =
  let bP = P.var "b" and n = P.var "n" in
  let d0 = B.bind tb "blk0" (EScratch (F64, [ bP; bP ])) in
  B.loop1 tb "ld" blk_t (Var d0) ~bound:bP (fun rb ~param ~i:r ->
      Var
        (B.loop1 rb "ldc" blk_t (Var param) ~bound:bP (fun cb ~param ~i:c ->
             let v = B.index cb mat [ P.sum [ base; P.mul r n; c ] ] in
             Var (set_cell cb ~blk:param ~r ~c v))))

let prog : prog =
  let n = P.var "n" and q = P.var "q" and bP = P.var "b" in
  let nn = P.mul n n in
  B.prog "lud" ~ctx:ctx0
    ~params:
      [
        pat_elem "q" i64;
        pat_elem "b" i64;
        pat_elem "n" i64;
        pat_elem "a" (arr F64 [ nn ]);
      ]
    ~ret:[ arr F64 [ nn ] ]
    (fun bb ->
      let res =
        B.loop bb "steps"
          [ ("am", arr F64 [ nn ], Var "a") ]
          ~var:"k" ~bound:q
          (fun lb ->
            let k = P.var "k" in
            let kb = P.mul k bP in
            let m = P.sub (P.sub q P.one) k in
            let diag_base = P.add (P.mul kb n) kb in
            let nb = P.mul n bP in
            (* ---- green: factor the diagonal block ---------------- *)
            let z = Ir.Names.fresh "z" in
            let xd =
              B.mapnest lb "xd"
                [ (z, P.one) ]
                (fun tb ->
                  let d = load_block tb ~mat:"am" ~base:diag_base in
                  (* in-place Doolittle: for i: for j>i: l = d[j][i]/d[i][i];
                     d[j][i] = l; for t>i: d[j][t] -= l*d[i][t] *)
                  let final =
                    B.loop1 tb "dool" blk_t (Var d) ~bound:bP
                      (fun ib ~param ~i ->
                        Var
                          (B.loop1 ib "doolj" blk_t (Var param)
                             ~bound:(P.sub (P.sub bP P.one) i)
                             (fun jb ~param ~i:j2 ->
                               let j = P.sum [ i; P.one; j2 ] in
                               let piv = B.index jb param [ i; i ] in
                               let a_ji = B.index jb param [ j; i ] in
                               let l = B.fdiv jb a_ji piv in
                               let d1 = set_cell jb ~blk:param ~r:j ~c:i l in
                               Var
                                 (B.loop1 jb "doolt" blk_t (Var d1)
                                    ~bound:(P.sub (P.sub bP P.one) i)
                                    (fun tb2 ~param ~i:t2 ->
                                      let t = P.sum [ i; P.one; t2 ] in
                                      let a_jt =
                                        B.index tb2 param [ j; t ]
                                      in
                                      let a_it =
                                        B.index tb2 param [ i; t ]
                                      in
                                      let v =
                                        B.fsub tb2 a_jt (B.fmul tb2 l a_it)
                                      in
                                      Var
                                        (set_cell tb2 ~blk:param ~r:j ~c:t v))))))
                  in
                  [ Var final ])
            in
            let a1 =
              B.bind lb "a1"
                (EUpdate
                   {
                     dst = "am";
                     slc =
                       SLmad
                         (Lmad.make diag_base
                            [
                              Lmad.dim P.one nb;
                              Lmad.dim bP n;
                              Lmad.dim bP P.one;
                            ]);
                     src = SrcArr xd;
                   })
            in
            (* At the last step (k = q-1) the perimeter and interior are
               empty (m = 0): the yellow/blue/red phases reduce to
               zero-trip mapnests and empty-slice write-backs.
               Branching them away keeps the semantics and leaves the
               blue temporary's allocation local to the else arm, where
               the reuse pass's hoist-through-if-arms strategy lifts it
               in front of the conditional and then out of the loop. *)
            let kq = B.cmp lb CEq (B.idx lb k) (B.idx lb (P.sub q P.one)) in
            let anext =
              B.if_ lb "anext" kq
                (fun _tb -> [ Var a1 ])
                (fun lb ->
            (* ---- yellow: perimeter row U_kj = L_kk^-1 A_kj -------- *)
            let jv = Ir.Names.fresh "j" in
            let top_base j =
              P.sum [ P.mul kb n; P.mul (P.add k P.one) bP; P.mul j bP ]
            in
            let xt =
              B.mapnest lb "xt"
                [ (jv, m) ]
                (fun tb ->
                  let t0 = load_block tb ~mat:a1 ~base:(top_base (P.var jv)) in
                  let final =
                    B.loop1 tb "fs" blk_t (Var t0) ~bound:bP
                      (fun rb ~param ~i:r ->
                        Var
                          (B.loop1 rb "fsc" blk_t (Var param) ~bound:bP
                             (fun cb ~param ~i:c ->
                               let acc =
                                 B.loop1 cb "fst" (TScalar F64)
                                   (Var
                                      (B.bind cb "tv"
                                         (EIndex (param, [ r; c ]))))
                                   ~bound:r
                                   (fun sb ~param:acc ~i:t ->
                                     let l_rt =
                                       B.index sb a1
                                         [
                                           P.sum
                                             [
                                               diag_base; P.mul r n; t;
                                             ];
                                         ]
                                     in
                                     let u_tc =
                                       B.index sb param [ t; c ]
                                     in
                                     B.fsub sb (Var acc)
                                       (B.fmul sb l_rt u_tc))
                               in
                               Var (set_cell cb ~blk:param ~r ~c (Var acc)))))
                  in
                  [ Var final ])
            in
            let a2 =
              B.bind lb "a2"
                (EUpdate
                   {
                     dst = a1;
                     slc =
                       SLmad
                         (Lmad.make (top_base P.zero)
                            [
                              Lmad.dim m bP;
                              Lmad.dim bP n;
                              Lmad.dim bP P.one;
                            ]);
                     src = SrcArr xt;
                   })
            in
            (* ---- blue: perimeter column L_ik = A_ik U_kk^-1 ------- *)
            let iv = Ir.Names.fresh "i" in
            let left_base i =
              P.sum [ P.mul (P.add k P.one) (P.mul bP n); P.mul i nb; kb ]
            in
            let xl =
              B.mapnest lb "xl"
                [ (iv, m) ]
                (fun tb ->
                  let t0 =
                    load_block tb ~mat:a2 ~base:(left_base (P.var iv))
                  in
                  let final =
                    B.loop1 tb "bs" blk_t (Var t0) ~bound:bP
                      (fun cb0 ~param ~i:c ->
                        Var
                          (B.loop1 cb0 "bsr" blk_t (Var param) ~bound:bP
                             (fun rb ~param ~i:r ->
                               let acc =
                                 B.loop1 rb "bst" (TScalar F64)
                                   (Var
                                      (B.bind rb "tv"
                                         (EIndex (param, [ r; c ]))))
                                   ~bound:c
                                   (fun sb ~param:acc ~i:t ->
                                     let l_rt =
                                       B.index sb param [ r; t ]
                                     in
                                     let u_tc =
                                       B.index sb a2
                                         [
                                           P.sum
                                             [ diag_base; P.mul t n; c ];
                                         ]
                                     in
                                     B.fsub sb (Var acc)
                                       (B.fmul sb l_rt u_tc))
                               in
                               let piv =
                                 B.index rb a2
                                   [ P.sum [ diag_base; P.mul c n; c ] ]
                               in
                               let v = B.fdiv rb (Var acc) piv in
                               Var (set_cell rb ~blk:param ~r ~c v))))
                  in
                  [ Var final ])
            in
            let a3 =
              B.bind lb "a3"
                (EUpdate
                   {
                     dst = a2;
                     slc =
                       SLmad
                         (Lmad.make (left_base P.zero)
                            [
                              Lmad.dim m nb;
                              Lmad.dim bP n;
                              Lmad.dim bP P.one;
                            ]);
                     src = SrcArr xl;
                   })
            in
            (* ---- red: interior rank-b update ---------------------- *)
            let bi = Ir.Names.fresh "bi" and bj = Ir.Names.fresh "bj" in
            let int_base bi bj =
              P.sum
                [
                  P.mul (P.add k P.one) (P.mul bP n);
                  P.mul (P.add k P.one) bP;
                  P.mul bi nb;
                  P.mul bj bP;
                ]
            in
            let xi =
              B.mapnest lb "xi"
                [ (bi, m); (bj, m) ]
                (fun tb ->
                  let biP = P.var bi and bjP = P.var bj in
                  let t0 =
                    load_block tb ~mat:a3 ~base:(int_base biP bjP)
                  in
                  let final =
                    B.loop1 tb "upd" blk_t (Var t0) ~bound:bP
                      (fun rb ~param ~i:r ->
                        Var
                          (B.loop1 rb "updc" blk_t (Var param) ~bound:bP
                             (fun cb ~param ~i:c ->
                               let acc =
                                 B.loop1 cb "updt" (TScalar F64)
                                   (Var
                                      (B.bind cb "tv"
                                         (EIndex (param, [ r; c ]))))
                                   ~bound:bP
                                   (fun sb ~param:acc ~i:t ->
                                     (* L from the blue temporary, U from
                                        the in-place top strip *)
                                     let l_rt =
                                       B.index sb xl [ biP; r; t ]
                                     in
                                     let u_tc =
                                       B.index sb a3
                                         [
                                           P.sum
                                             [
                                               top_base bjP; P.mul t n; c;
                                             ];
                                         ]
                                     in
                                     B.fsub sb (Var acc)
                                       (B.fmul sb l_rt u_tc))
                               in
                               Var (set_cell cb ~blk:param ~r ~c (Var acc)))))
                  in
                  [ Var final ])
            in
            let a4 =
              B.bind lb "a4"
                (EUpdate
                   {
                     dst = a3;
                     slc =
                       SLmad
                         (Lmad.make
                            (int_base P.zero P.zero)
                            [
                              Lmad.dim m nb;
                              Lmad.dim m bP;
                              Lmad.dim bP n;
                              Lmad.dim bP P.one;
                            ]);
                     src = SrcArr xi;
                   })
            in
            [ Var a4 ])
            in
            [ Var (List.hd anext) ])
      in
      [ Var (List.hd res) ])

(* ---------------------------------------------------------------- *)
(* Inputs, oracle, reference                                         *)
(* ---------------------------------------------------------------- *)

(* Diagonally dominant symmetric-ish input: stable under LU without
   pivoting, so blocked and unblocked factorizations agree closely. *)
let input ~n =
  Array.init (n * n) (fun i ->
      let r = i / n and c = i mod n in
      if r = c then float_of_int (n + 4)
      else 1.0 /. (1.0 +. float_of_int (abs (r - c))))

(* Unblocked Doolittle elimination: L (unit diagonal, strictly lower)
   and U share the matrix. *)
let direct ~n (a0 : float array) : float array =
  let a = Array.copy a0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let l = a.((j * n) + i) /. a.((i * n) + i) in
      a.((j * n) + i) <- l;
      for t = i + 1 to n - 1 do
        a.((j * n) + t) <- a.((j * n) + t) -. (l *. a.((i * n) + t))
      done
    done
  done;
  a

let args ~q ~b ~shell =
  let n = q * b in
  [
    Value.VInt q;
    Value.VInt b;
    Value.VInt n;
    (if shell then Value.VArr (Value.shell F64 [ n * n ])
     else Value.VArr (Value.of_floats [ n * n ] (input ~n)));
  ]

(* Rodinia's hand-written LUD runs the same blocked algorithm fully in
   place (no copies), but with block tiling only: without register
   tiling each interior operand is re-fetched from shared/L2 per block
   row instead of staying in registers, which we charge as ~1.6x the
   optimized kernel's read traffic (the paper's explanation for Futhark
   outperforming it).  The reference is therefore derived from the
   measured optimized trace. *)
let ref_of_opt (opt : Gpu.Device.counters) : Gpu.Device.counters =
  let c = Gpu.Device.clone opt in
  c.Gpu.Device.kernel_reads <- opt.Gpu.Device.kernel_reads *. 1.6;
  c.Gpu.Device.copies <- 0;
  c.Gpu.Device.copy_bytes <- 0.;
  c.Gpu.Device.copies_elided <- 0;
  c.Gpu.Device.elided_bytes <- 0.;
  c.Gpu.Device.allocs <- 1;
  c

let paper =
  [
    ("A100", "8192", (190., 1.08, 1.34, 1.25));
    ("A100", "16384", (1445., 1.19, 1.53, 1.29));
    ("A100", "32768", (11547., 1.21, 1.60, 1.32));
    ("MI100", "8192", (173., 0.60, 0.72, 1.19));
    ("MI100", "16384", (1248., 0.74, 0.98, 1.32));
    ("MI100", "32768", (10511., 0.83, 1.14, 1.39));
  ]

let datasets () =
  List.map
    (fun size ->
      {
        Runner.label = string_of_int size;
        args = args ~q:(size / block_size) ~b:block_size ~shell:true;
        ref_counters = Runner.From_opt ref_of_opt;
      })
    [ 8192; 16384; 32768 ]

let table ?options ?reuse ?pack ?pool ?pool_cap ?fail_safe () : Runner.outcome =
  Runner.run_table ?options ?reuse ?pack ?pool ?pool_cap ?fail_safe ~trace_args:(args ~q:3 ~b:4 ~shell:false)
    ~title:"Table II: LUD performance" ~runs:10 ~prog
    ~datasets:(datasets ()) ~paper ()

let small_args ~q ~b = args ~q ~b ~shell:false
let small_direct ~q ~b = direct ~n:(q * b) (input ~n:(q * b))
