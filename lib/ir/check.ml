(* Type, shape, and consumption checking for the IR.

   Shapes are symbolic (polynomials); two shapes agree when their normal
   forms coincide.  The checker also enforces the uniqueness discipline
   of section II-C in a simplified form: an array consumed by an
   in-place update (or passed as a loop-carried array) must not be used
   - directly or through an alias - by any later statement. *)

open Ast
module P = Symalg.Poly
module SM = Map.Make (String)
module SS = Ast.SS

exception Type_error of string

let err fmt = Fmt.kstr (fun s -> raise (Type_error s)) fmt

type env = {
  types : typ SM.t;
  aliases : SS.t SM.t; (* var -> everything it aliases (transitively) *)
  consumed : SS.t ref; (* mutable set of consumed variables *)
}

let empty_env () =
  { types = SM.empty; aliases = SM.empty; consumed = ref SS.empty }

let lookup env v =
  match SM.find_opt v env.types with
  | Some t -> t
  | None -> err "unbound variable %s" v

let alias_closure env v =
  match SM.find_opt v env.aliases with
  | Some s -> SS.add v s
  | None -> SS.singleton v

let bind env pe = { env with types = SM.add pe.pv pe.pt env.types }

let bind_alias env v targets =
  let closure =
    SS.fold
      (fun t acc -> SS.union acc (alias_closure env t))
      targets SS.empty
  in
  { env with aliases = SM.add v closure env.aliases }

let check_not_consumed env v =
  let als = alias_closure env v in
  let bad = SS.inter als !(env.consumed) in
  if not (SS.is_empty bad) then
    err "use of consumed array %s (consumed alias: %s)" v
      (String.concat ", " (SS.elements bad))

let consume env v =
  let als = alias_closure env v in
  (* also consume everything that aliases v *)
  let extra =
    SM.fold
      (fun w ws acc -> if SS.mem v ws then SS.add w acc else acc)
      env.aliases SS.empty
  in
  env.consumed := SS.union !(env.consumed) (SS.union als (SS.add v extra))

(* ---------------------------------------------------------------- *)
(* Scalar typing helpers                                             *)
(* ---------------------------------------------------------------- *)

let atom_typ env = function
  | Var v -> lookup env v
  | Int _ -> TScalar I64
  | Float _ -> TScalar F64
  | Bool _ -> TScalar Bool

let expect_scalar env a =
  match atom_typ env a with
  | TScalar s -> s
  | t -> err "expected scalar, got %a" Pretty.pp_typ t

let expect_array env v =
  match lookup env v with
  | TArr (elt, shape) -> (elt, shape)
  | t -> err "expected array %s, got %a" v Pretty.pp_typ t

let check_idx env (i : idx) =
  List.iter
    (fun v ->
      match lookup env v with
      | TScalar I64 -> ()
      | t -> err "index variable %s has type %a, wanted i64" v Pretty.pp_typ t)
    (P.vars i)

let shapes_equal s1 s2 =
  List.length s1 = List.length s2 && List.for_all2 P.equal s1 s2

let check_slice_against env slc shape =
  match slc with
  | STriplet sds ->
      if List.length sds <> List.length shape then
        err "triplet slice rank mismatch";
      List.iter
        (function
          | SFix i -> check_idx env i
          | SRange { start; len; step } ->
              check_idx env start;
              check_idx env len;
              check_idx env step)
        sds
  | SLmad l ->
      (* variables of the LMAD must be i64 in scope *)
      List.iter
        (fun v ->
          match lookup env v with
          | TScalar I64 -> ()
          | t -> err "LMAD slice variable %s : %a" v Pretty.pp_typ t)
        (Lmads.Lmad.vars l)

(* Compatibility used at existential boundaries (if/loop patterns):
   exact shape equality is not required - the pattern may bind
   existential sizes - but rank and element type must agree. *)
let compatible t1 t2 =
  match (t1, t2) with
  | TScalar a, TScalar b -> a = b
  | TMem, TMem -> true
  | TArr (e1, s1), TArr (e2, s2) -> e1 = e2 && List.length s1 = List.length s2
  | _ -> false

(* ---------------------------------------------------------------- *)
(* Expression typing                                                 *)
(* ---------------------------------------------------------------- *)

let rec infer_exp env (e : exp) : typ list =
  match e with
  | EAtom a ->
      (match a with
      | Var v when is_array_typ (lookup env v) -> check_not_consumed env v
      | _ -> ());
      [ atom_typ env a ]
  | EBin (op, a, b) -> (
      let ta = expect_scalar env a and tb = expect_scalar env b in
      if ta <> tb then err "binop operand mismatch";
      match op with
      | And | Or ->
          if ta <> Bool then err "&&/|| on non-bool";
          [ TScalar Bool ]
      | Add | Sub | Mul | Div | Rem | Min | Max ->
          if ta = Bool then err "arithmetic on bool";
          [ TScalar ta ])
  | ECmp (_, a, b) ->
      let ta = expect_scalar env a and tb = expect_scalar env b in
      if ta <> tb then err "cmp operand mismatch";
      [ TScalar Bool ]
  | EUn (op, a) -> (
      let ta = expect_scalar env a in
      match op with
      | Sqrt | Exp | Log ->
          if ta <> F64 then err "float unop on %a" Pretty.pp_sct ta;
          [ TScalar F64 ]
      | Neg | Abs -> [ TScalar ta ]
      | Not ->
          if ta <> Bool then err "! on non-bool";
          [ TScalar Bool ]
      | ToF64 ->
          if ta <> I64 then err "f64() on non-i64";
          [ TScalar F64 ]
      | ToI64 ->
          if ta <> F64 then err "i64() on non-f64";
          [ TScalar I64 ])
  | EIdx i ->
      check_idx env i;
      [ TScalar I64 ]
  | EIndex (v, idxs) ->
      check_not_consumed env v;
      let elt, shape = expect_array env v in
      if List.length idxs <> List.length shape then
        err "index rank mismatch on %s" v;
      List.iter (check_idx env) idxs;
      [ TScalar elt ]
  | ESlice (v, slc) ->
      check_not_consumed env v;
      let elt, shape = expect_array env v in
      check_slice_against env slc shape;
      [ TArr (elt, slice_shape slc shape) ]
  | ETranspose (v, perm) ->
      check_not_consumed env v;
      let elt, shape = expect_array env v in
      if List.sort compare perm <> List.init (List.length shape) Fun.id then
        err "invalid permutation on %s" v;
      [ TArr (elt, List.map (List.nth shape) perm) ]
  | EReshape (v, new_shape) ->
      check_not_consumed env v;
      let elt, shape = expect_array env v in
      List.iter (check_idx env) new_shape;
      if not (P.equal (P.prod shape) (P.prod new_shape)) then
        err "reshape of %s changes element count (%a vs %a)" v P.pp
          (P.prod shape) P.pp (P.prod new_shape);
      [ TArr (elt, new_shape) ]
  | EReverse (v, d) ->
      check_not_consumed env v;
      let elt, shape = expect_array env v in
      if d < 0 || d >= List.length shape then err "reverse dim out of range";
      [ TArr (elt, shape) ]
  | EIota n ->
      check_idx env n;
      [ TArr (I64, [ n ]) ]
  | EReplicate (shape, a) ->
      List.iter (check_idx env) shape;
      [ TArr (expect_scalar env a, shape) ]
  | EScratch (s, shape) ->
      List.iter (check_idx env) shape;
      [ TArr (s, shape) ]
  | ECopy v ->
      check_not_consumed env v;
      let elt, shape = expect_array env v in
      [ TArr (elt, shape) ]
  | EConcat vs -> (
      match vs with
      | [] -> err "empty concat"
      | v0 :: _ ->
          let elt0, shape0 = expect_array env v0 in
          let inner0 = List.tl shape0 in
          let total =
            List.fold_left
              (fun acc v ->
                check_not_consumed env v;
                let elt, shape = expect_array env v in
                if elt <> elt0 then err "concat element type mismatch";
                if not (shapes_equal (List.tl shape) inner0) then
                  err "concat inner shape mismatch";
                P.add acc (List.hd shape))
              P.zero vs
          in
          [ TArr (elt0, total :: inner0) ])
  | EUpdate { dst; slc; src } ->
      check_not_consumed env dst;
      let elt, shape = expect_array env dst in
      check_slice_against env slc shape;
      let tgt_shape = slice_shape slc shape in
      (match src with
      | SrcArr v ->
          check_not_consumed env v;
          let selt, sshape = expect_array env v in
          if selt <> elt then err "update element type mismatch";
          if not (shapes_equal sshape tgt_shape) then
            err "update shape mismatch on %s: [%a] vs [%a]" dst
              Fmt.(list ~sep:comma P.pp)
              sshape
              Fmt.(list ~sep:comma P.pp)
              tgt_shape
      | SrcScalar a ->
          if expect_scalar env a <> elt then err "update scalar type mismatch";
          if tgt_shape <> [] then err "scalar update into non-point slice");
      consume env dst;
      [ TArr (elt, shape) ]
  | EMap { nest; body } ->
      let env' =
        List.fold_left
          (fun env (v, n) ->
            check_idx env n;
            bind env (pat_elem v (TScalar I64)))
          env nest
      in
      let res_typs = infer_block env' body in
      let dims = List.map snd nest in
      List.map
        (function
          | TScalar s -> TArr (s, dims)
          | TArr (s, shape) -> TArr (s, dims @ shape)
          | TMem -> err "mapnest returning memory")
        res_typs
  | EReduce { op; ne; arr } ->
      check_not_consumed env arr;
      let elt, shape = expect_array env arr in
      if List.length shape <> 1 then err "reduce over non-1D array";
      if expect_scalar env ne <> elt then err "reduce neutral type mismatch";
      (match op with
      | Add | Mul | Min | Max -> ()
      | _ -> err "unsupported reduce operator");
      [ TScalar elt ]
  | EArgmin arr ->
      check_not_consumed env arr;
      let elt, shape = expect_array env arr in
      if List.length shape <> 1 then err "argmin over non-1D array";
      [ TScalar elt; TScalar I64 ]
  | ELoop { params; var; bound; body } ->
      check_idx env bound;
      let env' =
        List.fold_left
          (fun acc (pe, init) ->
            let ti = atom_typ env init in
            if not (compatible pe.pt ti) then
              err "loop init type mismatch for %s" pe.pv;
            (* loop-carried arrays are consumed *)
            (match (pe.pt, init) with
            | TArr _, Var v ->
                check_not_consumed env v;
                consume env v
            | _ -> ());
            bind acc pe)
          env params
      in
      let env' = bind env' (pat_elem var (TScalar I64)) in
      let res_typs = infer_block env' body in
      if List.length res_typs <> List.length params then
        err "loop body returns %d values for %d params"
          (List.length res_typs) (List.length params);
      List.iter2
        (fun (pe, _) t ->
          if not (compatible pe.pt t) then
            err "loop body result type mismatch for %s" pe.pv)
        params res_typs;
      List.map (fun (pe, _) -> pe.pt) params
  | EIf { cond; tb; fb } ->
      if expect_scalar env cond <> Bool then err "if condition not bool";
      (* Only one branch executes: each arm is checked against the
         consumption state at the [if], and the union of both arms'
         consumptions holds afterwards.  A shared set would reject
         programs whose arms consume the same array. *)
      let saved = !(env.consumed) in
      let t1 = infer_block env tb in
      let t_cons = !(env.consumed) in
      env.consumed := saved;
      let t2 = infer_block env fb in
      env.consumed := SS.union t_cons !(env.consumed);
      if List.length t1 <> List.length t2 then err "if branch arity mismatch";
      List.iter2
        (fun a b ->
          if not (compatible a b) then
            err "if branch type mismatch: %a vs %a" Pretty.pp_typ a
              Pretty.pp_typ b)
        t1 t2;
      (* Array results move into the conditional's binders - the
         branch value is consumed by the [if] (like a loop-carried
         array), so the binder is a fresh unique value and the
         returned name may not be used afterwards. *)
      List.iter
        (fun (b : block) ->
          List.iter2
            (fun a t ->
              match (a, t) with
              | Var v, TArr _ -> consume env v
              | _ -> ())
            b.res t1)
        [ tb; fb ];
      t1
  | EAlloc size ->
      check_idx env size;
      [ TMem ]

(* ---------------------------------------------------------------- *)
(* Blocks and programs                                               *)
(* ---------------------------------------------------------------- *)

and check_stm env (s : stm) : env =
  let typs = infer_exp env s.exp in
  if List.length typs <> List.length s.pat then
    err "pattern arity mismatch: %a" Pretty.pp_stm s;
  List.iter2
    (fun pe t ->
      if not (compatible pe.pt t) then
        err "pattern type mismatch for %s: %a vs %a" pe.pv Pretty.pp_typ pe.pt
          Pretty.pp_typ t
      else
        (* Exact shape check when no existential sizes involved: every
           shape variable of the pattern already in scope. *)
        match (pe.pt, t) with
        | TArr (_, s1), TArr (_, s2) ->
            let in_scope =
              List.for_all
                (fun v -> SM.mem v env.types)
                (List.concat_map P.vars s1)
            in
            if in_scope && not (shapes_equal s1 s2) then
              err "pattern shape mismatch for %s: [%a] vs [%a]" pe.pv
                Fmt.(list ~sep:comma P.pp)
                s1
                Fmt.(list ~sep:comma P.pp)
                s2
        | _ -> ())
    s.pat typs;
  let env = List.fold_left bind env s.pat in
  (* Alias tracking for view-like expressions. *)
  let alias_of =
    match s.exp with
    | EAtom (Var v) -> Some (SS.singleton v)
    | ESlice (v, _) | ETranspose (v, _) | EReshape (v, _) | EReverse (v, _) ->
        Some (SS.singleton v)
    (* The results of updates and conditionals do NOT alias their
       (consumed) operands for uniqueness purposes: they are fresh
       unique values.  The *memory* aliasing between them is tracked
       separately by the alias analysis of the memory passes. *)
    | _ -> None
  in
  match (s.pat, alias_of) with
  | pes, Some targets ->
      List.fold_left
        (fun env pe ->
          if is_array_typ pe.pt then bind_alias env pe.pv targets else env)
        env pes
  | _, None -> env

and infer_block env (b : block) : typ list =
  let env = List.fold_left check_stm env b.stms in
  List.map
    (fun a ->
      (match a with
      | Var v when is_array_typ (lookup env v) -> check_not_consumed env v
      | _ -> ());
      atom_typ env a)
    b.res

let check_prog (p : prog) : unit =
  let env = List.fold_left bind (empty_env ()) p.params in
  let typs = infer_block env p.body in
  if List.length typs <> List.length p.ret then
    err "program %s: return arity mismatch" p.name;
  List.iter2
    (fun a b ->
      if not (compatible a b) then
        err "program %s: return type mismatch: %a vs %a" p.name Pretty.pp_typ
          a Pretty.pp_typ b)
    typs p.ret

(* Expression type inference without consumption effects, for builders. *)
let infer_pure env_types (e : exp) : typ list =
  let env =
    { types = env_types; aliases = SM.empty; consumed = ref SS.empty }
  in
  infer_exp env e
