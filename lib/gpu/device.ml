(* Device profiles for the GPU cost model.

   This is the substitution for the paper's NVIDIA A100 and AMD MI100
   testbeds (DESIGN.md, substitution 1).  The executor counts the
   events below while running a memory-annotated program; a profile
   converts them to simulated wall time.  Bandwidths are the public
   datasheet numbers; overheads are realistic per-launch costs.  The
   *relative* results (the paper's Unopt/Opt/Ref ratios) depend on the
   counted traffic, not on these constants' absolute values. *)

type t = {
  name : string;
  mem_bandwidth : float; (* bytes/second achievable global-memory BW *)
  copy_bandwidth : float; (* bytes/second for pure copies (r+w streams) *)
  flop_throughput : float; (* scalar-op units/second the model charges *)
  kernel_overhead : float; (* seconds per kernel launch *)
  copy_overhead : float; (* seconds per copy-engine operation *)
  alloc_overhead : float; (* seconds per allocation (pooled) *)
}

(* NVIDIA A100 (SXM, 80 GB): 1555 GB/s HBM2e. *)
let a100 =
  {
    name = "A100";
    mem_bandwidth = 1.555e12;
    copy_bandwidth = 1.3e12; (* copies stream read+write; ~85% of peak *)
    flop_throughput = 6.0e12;
    kernel_overhead = 7.0e-6;
    copy_overhead = 1.2e-6;
    alloc_overhead = 1.0e-6;
  }

(* AMD MI100: 1228.8 GB/s HBM2. *)
let mi100 =
  {
    name = "MI100";
    mem_bandwidth = 1.2288e12;
    copy_bandwidth = 0.95e12;
    flop_throughput = 4.6e12;
    kernel_overhead = 10.0e-6;
    copy_overhead = 2.2e-6;
    alloc_overhead = 1.5e-6;
  }

(* Event counters accumulated by the executor. *)
type counters = {
  mutable kernels : int;
  mutable kernel_reads : float; (* bytes read by kernels *)
  mutable kernel_writes : float; (* bytes written by kernels *)
  mutable flops : float; (* scalar operations inside kernels *)
  mutable copies : int; (* copy operations actually performed *)
  mutable copy_bytes : float; (* bytes moved by those copies *)
  mutable copies_elided : int; (* copies skipped by short-circuiting *)
  mutable elided_bytes : float;
  mutable allocs : int;
  mutable alloc_bytes : float;
  mutable scratch_allocs : int; (* per-thread allocations inside kernels *)
  mutable scratch_bytes : float; (* bytes those scratch allocations cover *)
  mutable peak_bytes : float;
  mutable live_bytes : float;
}

let fresh_counters () =
  {
    kernels = 0;
    kernel_reads = 0.;
    kernel_writes = 0.;
    flops = 0.;
    copies = 0;
    copy_bytes = 0.;
    copies_elided = 0;
    elided_bytes = 0.;
    allocs = 0;
    alloc_bytes = 0.;
    scratch_allocs = 0;
    scratch_bytes = 0.;
    peak_bytes = 0.;
    live_bytes = 0.;
  }

(* Simulated execution time of the counted events on a device: kernels
   are bandwidth- or compute-bound (the max of the two roofline terms),
   copies stream through the copy engine, and every launch/allocation
   pays its overhead. *)
(* Fraction of the smaller roofline term hidden behind the larger one:
   perfect overlap (1.0) would make bandwidth-side optimizations
   invisible inside compute-bound kernels, which real GPUs do not
   achieve; no overlap (0.0) double-charges. *)
let overlap = 0.7

let time (d : t) (c : counters) : float =
  let kernel_traffic = (c.kernel_reads +. c.kernel_writes) /. d.mem_bandwidth in
  let kernel_compute = c.flops /. d.flop_throughput in
  let kernel =
    Float.max kernel_traffic kernel_compute
    +. ((1.0 -. overlap) *. Float.min kernel_traffic kernel_compute)
  in
  let copies = (2.0 *. c.copy_bytes /. d.copy_bandwidth)
               +. (float_of_int c.copies *. d.copy_overhead) in
  let launches = float_of_int c.kernels *. d.kernel_overhead in
  let allocs = float_of_int c.allocs *. d.alloc_overhead in
  kernel +. copies +. launches +. allocs

let pp_counters ppf c =
  Fmt.pf ppf
    "@[<v>kernels: %d (%.3g B read, %.3g B written, %.3g flops)@,\
     copies: %d (%.3g B); elided: %d (%.3g B)@,\
     allocs: %d (%.3g B) + %d scratch (%.3g B); peak %.3g B@]"
    c.kernels c.kernel_reads c.kernel_writes c.flops c.copies c.copy_bytes
    c.copies_elided c.elided_bytes c.allocs c.alloc_bytes c.scratch_allocs
    c.scratch_bytes c.peak_bytes

(* Counter snapshots for sampled cost estimation. *)
let clone (c : counters) : counters =
  {
    kernels = c.kernels;
    kernel_reads = c.kernel_reads;
    kernel_writes = c.kernel_writes;
    flops = c.flops;
    copies = c.copies;
    copy_bytes = c.copy_bytes;
    copies_elided = c.copies_elided;
    elided_bytes = c.elided_bytes;
    allocs = c.allocs;
    alloc_bytes = c.alloc_bytes;
    scratch_allocs = c.scratch_allocs;
    scratch_bytes = c.scratch_bytes;
    peak_bytes = c.peak_bytes;
    live_bytes = c.live_bytes;
  }

let assign (dst : counters) (src : counters) : unit =
  dst.kernels <- src.kernels;
  dst.kernel_reads <- src.kernel_reads;
  dst.kernel_writes <- src.kernel_writes;
  dst.flops <- src.flops;
  dst.copies <- src.copies;
  dst.copy_bytes <- src.copy_bytes;
  dst.copies_elided <- src.copies_elided;
  dst.elided_bytes <- src.elided_bytes;
  dst.allocs <- src.allocs;
  dst.alloc_bytes <- src.alloc_bytes;
  dst.scratch_allocs <- src.scratch_allocs;
  dst.scratch_bytes <- src.scratch_bytes;
  dst.peak_bytes <- src.peak_bytes;
  dst.live_bytes <- src.live_bytes

(* [add_simpson dst samples n] adds the Simpson-weighted per-iteration
   deltas, n * (d0 + 4*dmid + dlast) / 6, to [dst]; integer fields are
   rounded once on the combined value so constant per-iteration counts
   stay exact. *)
let add_simpson (dst : counters)
    ((b0, a0) : counters * counters) ((bm, am) : counters * counters)
    ((bl, al) : counters * counters) (n : float) : unit =
  let wf d0 dm dl = n *. (d0 +. (4. *. dm) +. dl) /. 6.0 in
  let wi f =
    let d0 = float_of_int (f a0 - f b0)
    and m = float_of_int (f am - f bm)
    and l = float_of_int (f al - f bl) in
    int_of_float (Float.round (wf d0 m l))
  in
  let wflt f = wf (f a0 -. f b0) (f am -. f bm) (f al -. f bl) in
  dst.kernels <- dst.kernels + wi (fun c -> c.kernels);
  dst.kernel_reads <- dst.kernel_reads +. wflt (fun c -> c.kernel_reads);
  dst.kernel_writes <- dst.kernel_writes +. wflt (fun c -> c.kernel_writes);
  dst.flops <- dst.flops +. wflt (fun c -> c.flops);
  dst.copies <- dst.copies + wi (fun c -> c.copies);
  dst.copy_bytes <- dst.copy_bytes +. wflt (fun c -> c.copy_bytes);
  dst.copies_elided <- dst.copies_elided + wi (fun c -> c.copies_elided);
  dst.elided_bytes <- dst.elided_bytes +. wflt (fun c -> c.elided_bytes);
  dst.allocs <- dst.allocs + wi (fun c -> c.allocs);
  dst.alloc_bytes <- dst.alloc_bytes +. wflt (fun c -> c.alloc_bytes);
  dst.scratch_allocs <- dst.scratch_allocs + wi (fun c -> c.scratch_allocs);
  dst.scratch_bytes <- dst.scratch_bytes +. wflt (fun c -> c.scratch_bytes);
  (* Live bytes extrapolate like any other accumulating quantity; the
     peak cannot be summed, so take the largest transient any sampled
     iteration showed *within itself* - how far it pushed the peak
     above both the peak at its start and its own ending live line -
     and replay it on top of the extrapolated live volume (transient
     in-kernel scratch spikes recur every iteration but do not stack).
     Measuring against the start-of-iteration snapshot keeps a stale
     program-wide maximum (a large temporary freed before the loop)
     from being re-added on top of the extrapolation, and an iteration
     that never raises the running peak contributes zero. *)
  dst.live_bytes <- dst.live_bytes +. wflt (fun c -> c.live_bytes);
  let overhang =
    List.fold_left
      (fun acc (b, a) ->
        Float.max acc (a.peak_bytes -. Float.max b.peak_bytes a.live_bytes))
      0.
      [ (b0, a0); (bm, am); (bl, al) ]
  in
  dst.peak_bytes <- Float.max dst.peak_bytes (dst.live_bytes +. overhang)
