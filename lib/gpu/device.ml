(* Device profiles for the GPU cost model.

   This is the substitution for the paper's NVIDIA A100 and AMD MI100
   testbeds (DESIGN.md, substitution 1).  The executor counts the
   events below while running a memory-annotated program; a profile
   converts them to simulated wall time.  Bandwidths are the public
   datasheet numbers; overheads are realistic per-launch costs.  The
   *relative* results (the paper's Unopt/Opt/Ref ratios) depend on the
   counted traffic, not on these constants' absolute values. *)

type t = {
  name : string;
  mem_bandwidth : float; (* bytes/second achievable global-memory BW *)
  copy_bandwidth : float; (* bytes/second for pure copies (r+w streams) *)
  flop_throughput : float; (* scalar-op units/second the model charges *)
  kernel_overhead : float; (* seconds per kernel launch *)
  copy_overhead : float; (* seconds per copy-engine operation *)
  alloc_miss_cost : float; (* seconds per fresh device allocation *)
  alloc_hit_cost : float; (* seconds per pool-served allocation *)
  free_sync_cost : float; (* seconds per device free (implicit sync) *)
}

(* NVIDIA A100 (SXM, 80 GB): 1555 GB/s HBM2e.  A fresh cudaMalloc is
   tens of microseconds (driver round-trip + VA mapping); a pool hit is
   a free-list pop.  cudaFree implicitly synchronizes the device, which
   is the reason caching allocators exist: a pooled free is a list push
   that costs nothing, an unpooled free pays [free_sync_cost]. *)
let a100 =
  {
    name = "A100";
    mem_bandwidth = 1.555e12;
    copy_bandwidth = 1.3e12; (* copies stream read+write; ~85% of peak *)
    flop_throughput = 6.0e12;
    kernel_overhead = 7.0e-6;
    copy_overhead = 1.2e-6;
    alloc_miss_cost = 10.0e-6;
    alloc_hit_cost = 0.5e-6;
    free_sync_cost = 10.0e-6;
  }

(* AMD MI100: 1228.8 GB/s HBM2. *)
let mi100 =
  {
    name = "MI100";
    mem_bandwidth = 1.2288e12;
    copy_bandwidth = 0.95e12;
    flop_throughput = 4.6e12;
    kernel_overhead = 10.0e-6;
    copy_overhead = 2.2e-6;
    alloc_miss_cost = 15.0e-6;
    alloc_hit_cost = 0.8e-6;
    free_sync_cost = 15.0e-6;
  }

(* ---------------------------------------------------------------- *)
(* Pooled allocator                                                  *)
(* ---------------------------------------------------------------- *)

(* A size-class free-list pool standing between the executor and the
   (simulated) device allocator, the mechanism that turns the reuse
   pass's alloc-count reductions into latency: a request is served from
   the free list of its power-of-two size class when possible (a *hit*,
   charged [alloc_hit_cost]) and falls through to a fresh device
   allocation otherwise (a *miss*, charged [alloc_miss_cost]).  Freed
   blocks keep their exact byte size on the free list, so a same-size
   request takes the exact-fit fast path; a differently-sized request
   in the same class reuses any free block large enough to hold it.
   The pool never returns memory to the device, mirroring the caching
   allocators of real array-language runtimes. *)
module Pool = struct
  type c = {
    classes : (int, float list ref) Hashtbl.t;
        (* class exponent -> free block sizes (bytes, newest first) *)
    cap : float option;
        (* device-memory budget: the pool refuses to let
           [device_bytes] grow past it while cached blocks can be
           evicted instead *)
    mutable device_bytes : float; (* total fresh device memory obtained *)
    mutable in_use : float; (* bytes currently handed out *)
    mutable high_water : float; (* max [in_use] ever observed *)
    mutable evictions : int; (* cached blocks returned to the device *)
  }

  type nonrec t = c

  type snapshot = {
    s_classes : (int * float list) list;
    s_device_bytes : float;
    s_in_use : float;
    s_high_water : float;
    s_evictions : int;
  }

  type stats = {
    p_device_bytes : float;
    p_high_water : float;
    p_fragmentation : float;
        (* fraction of pool-owned device memory idle even at the
           high-water mark: (device - high) / device *)
    p_cap : float option;
    p_evictions : int;
  }

  let create ?cap () =
    {
      classes = Hashtbl.create 16;
      cap = Option.map float_of_int cap;
      device_bytes = 0.;
      in_use = 0.;
      high_water = 0.;
      evictions = 0;
    }

  (* Smallest exponent [c] with 2^c >= bytes. *)
  let class_of bytes =
    let c = ref 0 and cap = ref 1. in
    while !cap < bytes do
      incr c;
      cap := !cap *. 2.
    done;
    !c

  let freelist t c =
    match Hashtbl.find_opt t.classes c with
    | Some l -> l
    | None ->
        let l = ref [] in
        Hashtbl.replace t.classes c l;
        l

  let note_use t bytes =
    t.in_use <- t.in_use +. bytes;
    if t.in_use > t.high_water then t.high_water <- t.in_use

  (* Remove the first list element satisfying [p]; None when absent. *)
  let take p l =
    let rec go acc = function
      | [] -> None
      | x :: rest when p x -> Some (x, List.rev_append acc rest)
      | x :: rest -> go (x :: acc) rest
    in
    go [] l

  (* Release cached free blocks (largest first, across all classes)
     until growing by [need] fits under the cap, or the caches run dry.
     Returns the number of blocks evicted; each eviction is a device
     free the caller must price. *)
  let evict_for t cap need =
    let evicted = ref 0 in
    let budget_ok () = t.device_bytes +. need <= cap in
    let continue = ref true in
    while (not (budget_ok ())) && !continue do
      let largest =
        Hashtbl.fold
          (fun _ l acc ->
            List.fold_left
              (fun acc s ->
                match acc with
                | Some (s', _) when s' >= s -> acc
                | _ -> Some (s, l))
              acc !l)
          t.classes None
      in
      match largest with
      | None -> continue := false
      | Some (s, l) ->
          (match take (fun x -> x = s) !l with
          | Some (_, rest) -> l := rest
          | None ->
              Core.Fault.internal ~where:"Device.Pool.evict_for"
                "free-list entry of %g bytes vanished during eviction" s);
          t.device_bytes <- t.device_bytes -. s;
          incr evicted
    done;
    t.evictions <- t.evictions + !evicted;
    !evicted

  (* Strict-cap refusal test: would [bytes] of *live* memory push
     [in_use] past the cap?  The default cap semantics never refuse
     live memory (the cap only bounds cache growth on top of it); the
     fail-safe executor asks this before allocating under --strict-cap
     and degrades to unpooled execution on [Some cap]. *)
  let refuses t bytes =
    match t.cap with
    | Some cap when t.in_use +. bytes > cap -> Some cap
    | _ -> None

  (* Release every cached free block - a pool teardown in place.  The
     count returned is the number of synchronizing device frees the
     caller must price.  Used when the executor degrades to unpooled
     execution after a device fault. *)
  let flush t =
    let n = ref 0 in
    Hashtbl.iter
      (fun _ l ->
        List.iter
          (fun s ->
            t.device_bytes <- t.device_bytes -. s;
            incr n)
          !l;
        l := [])
      t.classes;
    t.evictions <- t.evictions + !n;
    !n

  (* Serve [bytes]: [`Hit served] pops a free block ([served] is its
     device size, >= bytes); [`Miss ev] obtains fresh device memory of
     exactly [bytes], after evicting [ev] cached blocks when the pool
     would otherwise grow past its cap (each eviction is a device free
     the executor prices).  The cap never refuses live memory - it only
     bounds what the pool may keep cached on top of it. *)
  let alloc t bytes : [ `Hit of float | `Miss of int ] =
    let l = freelist t (class_of bytes) in
    let found =
      match take (fun s -> s = bytes) !l with
      | Some _ as r -> r (* exact-fit fast path *)
      | None -> take (fun s -> s >= bytes) !l
    in
    match found with
    | Some (served, rest) ->
        l := rest;
        note_use t served;
        `Hit served
    | None ->
        let ev =
          match t.cap with
          | Some cap when t.device_bytes +. bytes > cap ->
              evict_for t cap bytes
          | _ -> 0
        in
        t.device_bytes <- t.device_bytes +. bytes;
        note_use t bytes;
        `Miss ev

  (* Return a block of device size [bytes] to its class free list. *)
  let free t bytes =
    let l = freelist t (class_of bytes) in
    l := bytes :: !l;
    t.in_use <- t.in_use -. bytes

  (* Undo a premature free: the block's contents turned out to still be
     needed (a later occupant of a coalesced block writes into it).  If
     its capacity is still on the free list it is simply reclaimed;
     if the pool already re-served it, fresh device memory stands in. *)
  let revive t bytes =
    let l = freelist t (class_of bytes) in
    (match take (fun s -> s = bytes) !l with
    | Some (_, rest) -> l := rest
    | None -> t.device_bytes <- t.device_bytes +. bytes);
    note_use t bytes

  let snapshot t : snapshot =
    {
      s_classes = Hashtbl.fold (fun c l acc -> (c, !l) :: acc) t.classes [];
      s_device_bytes = t.device_bytes;
      s_in_use = t.in_use;
      s_high_water = t.high_water;
      s_evictions = t.evictions;
    }

  let restore t (s : snapshot) =
    Hashtbl.reset t.classes;
    List.iter (fun (c, l) -> Hashtbl.replace t.classes c (ref l)) s.s_classes;
    t.device_bytes <- s.s_device_bytes;
    t.in_use <- s.s_in_use;
    t.high_water <- s.s_high_water;
    t.evictions <- s.s_evictions

  let stats t : stats =
    {
      p_device_bytes = t.device_bytes;
      p_high_water = t.high_water;
      p_fragmentation =
        (if t.device_bytes <= 0. then 0.
         else (t.device_bytes -. t.high_water) /. t.device_bytes);
      p_cap = t.cap;
      p_evictions = t.evictions;
    }

  let pp_stats ppf (s : stats) =
    Fmt.pf ppf "pool: %.3g B device, %.3g B high-water, %.1f%% fragmentation"
      s.p_device_bytes s.p_high_water (100. *. s.p_fragmentation);
    match s.p_cap with
    | Some cap -> Fmt.pf ppf ", %.3g B cap (%d evictions)" cap s.p_evictions
    | None -> ()
end

(* Event counters accumulated by the executor. *)
type counters = {
  mutable kernels : int;
  mutable kernel_reads : float; (* bytes read by kernels *)
  mutable kernel_writes : float; (* bytes written by kernels *)
  mutable flops : float; (* scalar operations inside kernels *)
  mutable copies : int; (* copy operations actually performed *)
  mutable copy_bytes : float; (* bytes moved by those copies *)
  mutable copies_elided : int; (* copies skipped by short-circuiting *)
  mutable elided_bytes : float;
  mutable allocs : int;
  mutable alloc_bytes : float;
  mutable arena_allocs : int; (* packed-arena allocations among [allocs] *)
  mutable arena_bytes : float; (* bytes those arenas cover *)
  mutable scratch_allocs : int; (* per-thread allocations inside kernels *)
  mutable scratch_bytes : float; (* bytes those scratch allocations cover *)
  mutable pool_hits : int; (* allocations served from the pool *)
  mutable pool_misses : int; (* allocations falling through to the device *)
  mutable frees : int; (* device frees (pool disabled: each one syncs) *)
  mutable peak_bytes : float;
  mutable live_bytes : float;
}

let fresh_counters () =
  {
    kernels = 0;
    kernel_reads = 0.;
    kernel_writes = 0.;
    flops = 0.;
    copies = 0;
    copy_bytes = 0.;
    copies_elided = 0;
    elided_bytes = 0.;
    allocs = 0;
    alloc_bytes = 0.;
    arena_allocs = 0;
    arena_bytes = 0.;
    scratch_allocs = 0;
    scratch_bytes = 0.;
    pool_hits = 0;
    pool_misses = 0;
    frees = 0;
    peak_bytes = 0.;
    live_bytes = 0.;
  }

(* Simulated execution time of the counted events on a device: kernels
   are bandwidth- or compute-bound (the max of the two roofline terms),
   copies stream through the copy engine, and every launch/allocation
   pays its overhead. *)
(* Fraction of the smaller roofline term hidden behind the larger one:
   perfect overlap (1.0) would make bandwidth-side optimizations
   invisible inside compute-bound kernels, which real GPUs do not
   achieve; no overlap (0.0) double-charges. *)
let overlap = 0.7

let time (d : t) (c : counters) : float =
  let kernel_traffic = (c.kernel_reads +. c.kernel_writes) /. d.mem_bandwidth in
  let kernel_compute = c.flops /. d.flop_throughput in
  let kernel =
    Float.max kernel_traffic kernel_compute
    +. ((1.0 -. overlap) *. Float.min kernel_traffic kernel_compute)
  in
  let copies = (2.0 *. c.copy_bytes /. d.copy_bandwidth)
               +. (float_of_int c.copies *. d.copy_overhead) in
  let launches = float_of_int c.kernels *. d.kernel_overhead in
  (* Pool hits pay the (cheap) hit cost, misses the full device-side
     cost; allocations made with the pool disabled (hits = misses = 0)
     all go to the device and pay the miss cost. *)
  let unpooled = c.allocs - c.pool_hits - c.pool_misses in
  let allocs =
    (float_of_int (c.pool_misses + unpooled) *. d.alloc_miss_cost)
    +. (float_of_int c.pool_hits *. d.alloc_hit_cost)
  in
  (* Only pool-less runs accumulate [frees]: a pooled free is a free
     list push, an unpooled one is a synchronizing device call. *)
  let frees = float_of_int c.frees *. d.free_sync_cost in
  kernel +. copies +. launches +. allocs +. frees

let pp_counters ppf c =
  Fmt.pf ppf
    "@[<v>kernels: %d (%.3g B read, %.3g B written, %.3g flops)@,\
     copies: %d (%.3g B); elided: %d (%.3g B)@,\
     allocs: %d (%.3g B, %d arenas) + %d scratch (%.3g B); \
     pool %d hit / %d miss; %d device frees; peak %.3g B@]"
    c.kernels c.kernel_reads c.kernel_writes c.flops c.copies c.copy_bytes
    c.copies_elided c.elided_bytes c.allocs c.alloc_bytes c.arena_allocs
    c.scratch_allocs c.scratch_bytes c.pool_hits c.pool_misses c.frees
    c.peak_bytes

(* Counter snapshots for sampled cost estimation. *)
let clone (c : counters) : counters =
  {
    kernels = c.kernels;
    kernel_reads = c.kernel_reads;
    kernel_writes = c.kernel_writes;
    flops = c.flops;
    copies = c.copies;
    copy_bytes = c.copy_bytes;
    copies_elided = c.copies_elided;
    elided_bytes = c.elided_bytes;
    allocs = c.allocs;
    alloc_bytes = c.alloc_bytes;
    arena_allocs = c.arena_allocs;
    arena_bytes = c.arena_bytes;
    scratch_allocs = c.scratch_allocs;
    scratch_bytes = c.scratch_bytes;
    pool_hits = c.pool_hits;
    pool_misses = c.pool_misses;
    frees = c.frees;
    peak_bytes = c.peak_bytes;
    live_bytes = c.live_bytes;
  }

let assign (dst : counters) (src : counters) : unit =
  dst.kernels <- src.kernels;
  dst.kernel_reads <- src.kernel_reads;
  dst.kernel_writes <- src.kernel_writes;
  dst.flops <- src.flops;
  dst.copies <- src.copies;
  dst.copy_bytes <- src.copy_bytes;
  dst.copies_elided <- src.copies_elided;
  dst.elided_bytes <- src.elided_bytes;
  dst.allocs <- src.allocs;
  dst.alloc_bytes <- src.alloc_bytes;
  dst.arena_allocs <- src.arena_allocs;
  dst.arena_bytes <- src.arena_bytes;
  dst.scratch_allocs <- src.scratch_allocs;
  dst.scratch_bytes <- src.scratch_bytes;
  dst.pool_hits <- src.pool_hits;
  dst.pool_misses <- src.pool_misses;
  dst.frees <- src.frees;
  dst.peak_bytes <- src.peak_bytes;
  dst.live_bytes <- src.live_bytes

(* [add_simpson dst samples n] adds the Simpson-weighted per-iteration
   deltas, n * (d0 + 4*dmid + dlast) / 6, to [dst]; integer fields are
   rounded once on the combined value so constant per-iteration counts
   stay exact. *)
let add_simpson (dst : counters)
    ((b0, a0) : counters * counters) ((bm, am) : counters * counters)
    ((bl, al) : counters * counters) (n : float) : unit =
  let wf d0 dm dl = n *. (d0 +. (4. *. dm) +. dl) /. 6.0 in
  let wi f =
    let d0 = float_of_int (f a0 - f b0)
    and m = float_of_int (f am - f bm)
    and l = float_of_int (f al - f bl) in
    int_of_float (Float.round (wf d0 m l))
  in
  let wflt f = wf (f a0 -. f b0) (f am -. f bm) (f al -. f bl) in
  dst.kernels <- dst.kernels + wi (fun c -> c.kernels);
  dst.kernel_reads <- dst.kernel_reads +. wflt (fun c -> c.kernel_reads);
  dst.kernel_writes <- dst.kernel_writes +. wflt (fun c -> c.kernel_writes);
  dst.flops <- dst.flops +. wflt (fun c -> c.flops);
  dst.copies <- dst.copies + wi (fun c -> c.copies);
  dst.copy_bytes <- dst.copy_bytes +. wflt (fun c -> c.copy_bytes);
  dst.copies_elided <- dst.copies_elided + wi (fun c -> c.copies_elided);
  dst.elided_bytes <- dst.elided_bytes +. wflt (fun c -> c.elided_bytes);
  dst.allocs <- dst.allocs + wi (fun c -> c.allocs);
  dst.alloc_bytes <- dst.alloc_bytes +. wflt (fun c -> c.alloc_bytes);
  dst.arena_allocs <- dst.arena_allocs + wi (fun c -> c.arena_allocs);
  dst.arena_bytes <- dst.arena_bytes +. wflt (fun c -> c.arena_bytes);
  dst.scratch_allocs <- dst.scratch_allocs + wi (fun c -> c.scratch_allocs);
  dst.scratch_bytes <- dst.scratch_bytes +. wflt (fun c -> c.scratch_bytes);
  dst.pool_hits <- dst.pool_hits + wi (fun c -> c.pool_hits);
  dst.pool_misses <- dst.pool_misses + wi (fun c -> c.pool_misses);
  dst.frees <- dst.frees + wi (fun c -> c.frees);
  (* Live bytes extrapolate like any other accumulating quantity; the
     peak cannot be summed, so take the largest transient any sampled
     iteration showed *within itself* - how far it pushed the peak
     above both the peak at its start and its own ending live line -
     and replay it on top of the extrapolated live volume (transient
     in-kernel scratch spikes recur every iteration but do not stack).
     Measuring against the start-of-iteration snapshot keeps a stale
     program-wide maximum (a large temporary freed before the loop)
     from being re-added on top of the extrapolation, and an iteration
     that never raises the running peak contributes zero. *)
  dst.live_bytes <- dst.live_bytes +. wflt (fun c -> c.live_bytes);
  let overhang =
    List.fold_left
      (fun acc (b, a) ->
        Float.max acc (a.peak_bytes -. Float.max b.peak_bytes a.live_bytes))
      0.
      [ (b0, a0); (bm, am); (bl, al) ]
  in
  dst.peak_bytes <- Float.max dst.peak_bytes (dst.live_bytes +. overhang)
