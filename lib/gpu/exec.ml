(* The memory-aware executor: runs a memory-annotated program against
   the GPU cost model.

   Unlike the reference interpreter (which materializes every view and
   ignores annotations), this executor honours memory blocks and index
   functions exactly: arrays are (block, concrete index function) pairs,
   change-of-layout operations cost nothing, and the copies at updates,
   concats, [copy], and mapnest result writes are *elided* whenever the
   source already lives at the destination location - which is
   precisely what the short-circuiting pass arranges.  The executor is
   therefore both the validation vehicle (full mode: computed values
   must match the reference interpreter) and the measurement vehicle
   (cost-only mode at paper-scale sizes: counted traffic feeds the
   device time model).

   Cost-only mode executes control flow and scalar sizes exactly but
   samples each mapnest body once (at the midpoint of its index space)
   and scales the measured per-thread cost by the thread count; byte
   counts for copies and slices are exact since they derive from
   shapes.  This is accurate for thread-uniform bodies and for bodies
   whose cost is linear in the thread index (wavefront/triangular
   workloads), which covers the benchmark suite. *)

open Ir.Ast
module P = Symalg.Poly
module Ixfn = Lmads.Ixfn
module Lmad = Lmads.Lmad
module Refset = Lmads.Refset
module Trace = Core.Trace
module SM = Map.Make (String)
module Value = Ir.Value

exception Exec_error of string

let err fmt = Fmt.kstr (fun s -> raise (Exec_error s)) fmt

type mode = Full | Cost_only

(* Fault injection for testing the dynamic checker: [Off_by_one_write]
   shifts every in-kernel cell write by one element.  The static
   annotations are untouched, so memlint still passes - only the
   {!Core.Memtrace} cross-check of a traced run can observe the bug. *)
type mutation = Off_by_one_write

(* ---------------------------------------------------------------- *)
(* Concrete memory                                                   *)
(* ---------------------------------------------------------------- *)

type payload = PF of float array | PI of int array | PB of bool array

type blockv = {
  bid : int; (* unique id *)
  bname : string;
  bsize : int; (* elements *)
  mutable payload : payload option; (* lazily materialized (Full mode) *)
  mutable devbytes : float;
      (* device bytes the pool served for this block; 0 when the block
         is not pool-owned (inputs, scratch, pool disabled) *)
  mutable freed : bool; (* currently sitting on a pool free list *)
}

(* Concrete index function: integer offsets/cardinals/strides.  The
   constituent LMADs are {!Lmads.Lmad.concrete}, shared with the trace
   events so footprints flow into {!Core.Trace} without conversion. *)
type clmad = Lmad.concrete = {
  coff : int;
  cdims : (int * int) list; (* card, stride *)
}

type cixfn = clmad list (* head first, memory side last *)

type arrv = { elt : sct; shape : int list; block : blockv; ix : cixfn }

type aval =
  | AInt of int
  | AFloat of float
  | ABool of bool
  | AMem of blockv
  | AArr of arrv

type env = aval SM.t

type state = {
  mode : mode;
  counters : Device.counters;
  mutable pool : Device.Pool.t option;
      (* pooled allocator serving top-level [EAlloc]s; None = every
         allocation is a fresh device allocation (the --no-pool model).
         Mutable: a contained device fault degrades the run to
         unpooled execution by flushing and dropping the pool. *)
  fail_safe : bool;
      (* contain device faults (OOM, strict-cap refusal) by degrading
         to unpooled execution instead of raising *)
  strict_cap : bool;
      (* refuse live memory past the pool cap (default cap semantics
         only bound cache growth) *)
  oom_at : int;
      (* fault injection: refuse allocation number [oom_at] (1-based
         over top-level and scratch allocations); 0 = never *)
  mutable alloc_seq : int; (* allocations seen so far, for [oom_at] *)
  mutable exec_faults : Core.Fault.t list; (* contained, newest first *)
  mutable unfreed : int;
      (* device-owned blocks allocated but not yet freed: the
         teardown's synchronizing-free top-up counts exactly these,
         staying consistent even when the pool degraded mid-run *)
  mutable tracer : Trace.t option;
      (* when set, every memory-relevant action appends a trace event *)
  mutation : mutation option; (* fault injection (tests only) *)
  mutable kernel_depth : int;
  mutable kernel_scratch : float;
      (* bytes of per-thread scratch allocated by the kernel currently
         in flight (CUDA local-memory model): raises the peak while the
         kernel runs, released when it retires *)
  thread_writes : (int * int, unit) Hashtbl.t;
      (* (block id, offset) pairs written by the current kernel thread:
         re-reads of a thread's own writes hit registers/shared memory
         and cost no global traffic (temporal locality within a thread,
         e.g. the in-block cells of NW/LUD) *)
  kernel_reads_tally : (int, float * int) Hashtbl.t;
      (* per-kernel DRAM read estimate per block: bid -> (bytes, block
         size in elements).  At kernel end each block's reads are capped
         at its footprint - a perfect-L2 model: within one kernel launch
         a location is fetched from DRAM at most once (spatial/temporal
         sharing between threads, e.g. stencil neighbours) *)
}

let elem_bytes = 8.0

(* ---------------------------------------------------------------- *)
(* Pool plumbing                                                     *)
(* ---------------------------------------------------------------- *)

(* A block goes back on the pool's free list when its contents die (the
   same last-use markers the tracer emits); double frees from blocks
   shared by several variables are guarded by the [freed] flag.  The
   converse direction mirrors Memtrace's revive-on-write rule: writing
   into a freed block (the coalesced-block pattern, where a later
   occupant rebinds into an earlier occupant's block) reclaims its
   capacity from the pool.

   Without a pool the same death marker is a synchronizing device free
   ([cudaFree] stalls until the device drains), so it is counted for
   the cost model instead of pushed onto a free list. *)
let pool_free st (b : blockv) =
  if b.devbytes > 0. && not b.freed then begin
    b.freed <- true;
    st.unfreed <- st.unfreed - 1;
    match st.pool with
    | Some p -> Device.Pool.free p b.devbytes
    | None -> st.counters.frees <- st.counters.frees + 1
  end

let pool_revive st (b : blockv) =
  if b.freed then begin
    b.freed <- false;
    st.unfreed <- st.unfreed + 1;
    match st.pool with
    | Some p -> Device.Pool.revive p b.devbytes
    | None -> ()
  end

(* Contain (fail-safe) or raise a device-layer fault.  Containment is
   the executor's rung of the degradation ladder: the pool's cached
   blocks are all released - priced as synchronizing device frees, the
   penalty of degrading - and the run continues unpooled, every
   further allocation a fresh device allocation. *)
let device_fault st (f : Core.Fault.t) =
  if not st.fail_safe then raise (Core.Fault.Fault f)
  else begin
    st.exec_faults <- f :: st.exec_faults;
    (match st.pool with
    | Some p ->
        let released = Device.Pool.flush p in
        st.counters.frees <- st.counters.frees + released
    | None -> ());
    st.pool <- None
  end

(* ---------------------------------------------------------------- *)
(* Environment and polynomial evaluation                             *)
(* ---------------------------------------------------------------- *)

let lookup env v =
  match SM.find_opt v env with
  | Some x -> x
  | None -> err "exec: unbound %s" v

let lookup_arr env v =
  match lookup env v with
  | AArr a -> a
  | _ -> err "exec: %s is not an array" v

let lookup_block env v =
  match lookup env v with
  | AMem b -> b
  | _ -> err "exec: %s is not a memory block" v

let eval_poly env (p : P.t) : int =
  P.eval
    (fun v ->
      match lookup env v with
      | AInt i -> i
      | _ -> err "exec: %s is not an integer (in index expression)" v)
    p

let concretize env (ix : Ixfn.t) : cixfn =
  List.map
    (fun l ->
      {
        coff = eval_poly env (Lmad.offset l);
        cdims =
          List.map
            (fun d -> (eval_poly env d.Lmad.n, eval_poly env d.Lmad.s))
            (Lmad.dims l);
      })
    (Ixfn.chain ix)


(* Apply a concrete index function to a concrete index. *)
let capply (ix : cixfn) (idxs : int list) : int =
  match ix with
  | [] -> err "exec: empty index function"
  | first :: rest ->
      let app l idxs =
        List.fold_left2
          (fun acc i (_, s) -> acc + (i * s))
          l.coff idxs l.cdims
      in
      let o = ref (app first idxs) in
      List.iter
        (fun l ->
          let shp = List.map fst l.cdims in
          let rec unrank o = function
            | [] -> []
            | [ _ ] -> [ o ]
            | _ :: rest ->
                let inner = List.fold_left ( * ) 1 rest in
                (o / inner) :: unrank (o mod inner) rest
          in
          o := app l (unrank !o shp))
        rest;
      !o

(* ---------------------------------------------------------------- *)
(* Declared footprints (tracing)                                     *)
(* ---------------------------------------------------------------- *)

(* The declared region of a static index function at launch time: its
   memory-side LMAD concretized under the environment, via the Refset
   machinery the static analyses reason with.  Annotations mentioning
   variables with no launch-time value (per-thread indices, inner loop
   counters) have no single enumerable region and degrade to None -
   "anywhere in the block", which is still bounded by the block size. *)
let int_env env v =
  match lookup env v with
  | AInt i -> i
  | _ -> err "exec: %s is not an integer (in footprint)" v

let try_region env (ix : Ixfn.t) : clmad list option =
  match List.rev (Ixfn.chain ix) with
  | [] -> None
  | mem :: _ -> (
      try Refset.concretize (int_env env) (Refset.of_lmad mem)
      with Exec_error _ -> None)

(* An already-concrete array view's memory-side region. *)
let region_of_cixfn (ix : cixfn) : clmad list option =
  match List.rev ix with [] -> None | mem :: _ -> Some [ mem ]

(* Declared write footprints of a kernel statement: the memory
   annotations of its array-typed bindings. *)
let pat_footprints env (s : stm) : Trace.footprint list =
  List.filter_map
    (fun pe ->
      match (pe.pt, pe.pmem) with
      | TArr _, Some m -> (
          match lookup env m.block with
          | AMem b ->
              Some
                {
                  Trace.fvar = pe.pv;
                  fbid = b.bid;
                  fregion = try_region env m.ixfn;
                }
          | _ -> None)
      | _ -> None)
    s.pat

(* Every variable name occurring in a block (conservative: includes
   locally bound names, which simply fail the environment lookup). *)
let rec names_in_block (blk : block) acc =
  let acc = List.fold_left (fun acc s -> names_in_stm s acc) acc blk.stms in
  List.fold_left (fun acc a -> name_of_atom a acc) acc blk.res

and name_of_atom a acc = match a with Var v -> v :: acc | _ -> acc

and names_in_stm (s : stm) acc =
  match s.exp with
  | EAtom a | EUn (_, a) -> name_of_atom a acc
  | EBin (_, a, b) | ECmp (_, a, b) -> name_of_atom a (name_of_atom b acc)
  | EIdx _ | EIota _ | EScratch _ | EAlloc _ -> acc
  | EIndex (v, _)
  | ESlice (v, _)
  | ETranspose (v, _)
  | EReshape (v, _)
  | EReverse (v, _)
  | ECopy v
  | EArgmin v ->
      v :: acc
  | EConcat vs -> vs @ acc
  | EReplicate (_, a) -> name_of_atom a acc
  | EUpdate { dst; src; _ } -> (
      let acc = dst :: acc in
      match src with
      | SrcScalar a -> name_of_atom a acc
      | SrcArr v -> v :: acc)
  | EMap { body; _ } -> names_in_block body acc
  | EReduce { ne; arr; _ } -> name_of_atom ne (arr :: acc)
  | ELoop { params; body; _ } ->
      let acc =
        List.fold_left (fun acc (_, init) -> name_of_atom init acc) acc params
      in
      names_in_block body acc
  | EIf { cond; tb; fb } ->
      name_of_atom cond (names_in_block tb (names_in_block fb acc))

(* Memory destinations annotated anywhere inside a kernel body whose
   block already exists at launch (hoisted scratch): the kernel is
   declared to write - and therefore also read - them. *)
let rec body_dest_footprints env (blk : block) acc =
  List.fold_left
    (fun acc s ->
      let acc =
        List.fold_left
          (fun acc pe ->
            match pe.pmem with
            | Some m -> (
                match SM.find_opt m.block env with
                | Some (AMem b) ->
                    { Trace.fvar = pe.pv; fbid = b.bid; fregion = None } :: acc
                | _ -> acc)
            | None -> acc)
          acc s.pat
      in
      match s.exp with
      | EMap { body; _ } | ELoop { body; _ } -> body_dest_footprints env body acc
      | EIf { tb; fb; _ } ->
          body_dest_footprints env tb (body_dest_footprints env fb acc)
      | _ -> acc)
    acc blk.stms

(* Declared read footprints of a kernel body: the full (concrete) view
   of every outer array the body mentions by name. *)
let read_footprints env (blk : block) : Trace.footprint list =
  let names = List.sort_uniq compare (names_in_block blk []) in
  List.filter_map
    (fun v ->
      match SM.find_opt v env with
      | Some (AArr a) ->
          Some
            {
              Trace.fvar = v;
              fbid = a.block.bid;
              fregion = region_of_cixfn a.ix;
            }
      | _ -> None)
    names

let arr_footprint v (a : arrv) : Trace.footprint =
  { Trace.fvar = v; fbid = a.block.bid; fregion = region_of_cixfn a.ix }

(* Element-wise location equality (same block, same mapping): used to
   elide copies arranged by short-circuiting.  Cardinal-1 dimensions do
   not affect the mapping and are dropped before comparison. *)
let strip (ix : cixfn) =
  List.map
    (fun l -> { l with cdims = List.filter (fun (n, _) -> n <> 1) l.cdims })
    ix

let same_location (b1 : blockv) ix1 (b2 : blockv) ix2 =
  b1 == b2 && strip ix1 = strip ix2

(* ---------------------------------------------------------------- *)
(* Payload access                                                    *)
(* ---------------------------------------------------------------- *)

let ensure_payload (b : blockv) (elt : sct) : payload =
  match b.payload with
  | Some p -> p
  | None ->
      let p =
        match elt with
        | F64 -> PF (Array.make b.bsize 0.0)
        | I64 -> PI (Array.make b.bsize 0)
        | Bool -> PB (Array.make b.bsize false)
      in
      b.payload <- Some p;
      p

let tally_reads st (a : blockv) bytes =
  let prev =
    match Hashtbl.find_opt st.kernel_reads_tally a.bid with
    | Some (b, _) -> b
    | None -> 0.
  in
  Hashtbl.replace st.kernel_reads_tally a.bid (prev +. bytes, a.bsize)

let read_cell st (a : blockv) elt (off : int) : aval =
  (if st.kernel_depth = 0 then
     st.counters.kernel_reads <- st.counters.kernel_reads +. elem_bytes
   else if not (Hashtbl.mem st.thread_writes (a.bid, off)) then
     tally_reads st a elem_bytes);
  (match st.tracer with
  | Some tr when st.kernel_depth > 0 && st.mode = Full ->
      Trace.kernel_read tr ~bid:a.bid ~off
  | _ -> ());
  match st.mode with
  | Cost_only -> (
      match elt with F64 -> AFloat 0.5 | I64 -> AInt 0 | Bool -> ABool true)
  | Full -> (
      if off < 0 || off >= a.bsize then
        err "exec: read out of bounds in %s (%d / %d)" a.bname off a.bsize;
      match ensure_payload a elt with
      | PF d -> AFloat d.(off)
      | PI d -> AInt d.(off)
      | PB d -> ABool d.(off))

let write_cell st (a : blockv) elt (off : int) (v : aval) : unit =
  if a.freed then pool_revive st a;
  let off =
    match st.mutation with
    | Some Off_by_one_write when st.kernel_depth > 0 -> off + 1
    | _ -> off
  in
  st.counters.kernel_writes <- st.counters.kernel_writes +. elem_bytes;
  if st.kernel_depth > 0 then
    Hashtbl.replace st.thread_writes (a.bid, off) ();
  (match st.tracer with
  | Some tr when st.kernel_depth > 0 && st.mode = Full ->
      Trace.kernel_write tr ~bid:a.bid ~off
  | _ -> ());
  match st.mode with
  | Cost_only -> ()
  | Full -> (
      if off < 0 || off >= a.bsize then
        err "exec: write out of bounds in %s (%d / %d)" a.bname off a.bsize;
      match (ensure_payload a elt, v) with
      | PF d, AFloat x -> d.(off) <- x
      | PI d, AInt x -> d.(off) <- x
      | PB d, ABool x -> d.(off) <- x
      | _ -> err "exec: type mismatch writing %s" a.bname)

(* Raw data movement that bypasses the kernel counters (used by copy
   accounting, which maintains its own counters). *)
let move_cell (src : blockv) (dst : blockv) elt (soff : int) (doff : int) :
    unit =
  match (ensure_payload src elt, ensure_payload dst elt) with
  | PF s, PF d -> d.(doff) <- s.(soff)
  | PI s, PI d -> d.(doff) <- s.(soff)
  | PB s, PB d -> d.(doff) <- s.(soff)
  | _ -> err "exec: copy type mismatch"

(* All logical indices of a concrete shape, row-major. *)
let indices shape = Value.indices shape

let count shape = List.fold_left ( * ) 1 shape

(* ---------------------------------------------------------------- *)
(* Copies                                                            *)
(* ---------------------------------------------------------------- *)

(* Copy the logical contents of (sb, six, shape) to (db, dix); elided
   when the locations already coincide. *)
let copy_logical st elt shape (sb : blockv) (six : cixfn) (db : blockv)
    (dix : cixfn) : unit =
  if db.freed then pool_revive st db;
  let bytes = float_of_int (count shape) *. elem_bytes in
  let elided = same_location sb six db dix in
  (match st.tracer with
  | Some tr ->
      Trace.copy tr ~src:sb.bid ~dst:db.bid ~shape ~six ~dix ~bytes ~elided
        ~in_kernel:(st.kernel_depth > 0)
  | None -> ());
  if elided then begin
    st.counters.copies_elided <- st.counters.copies_elided + 1;
    st.counters.elided_bytes <- st.counters.elided_bytes +. bytes
  end
  else begin
    (* A copy inside a kernel (a per-thread result write) is kernel
       traffic; a top-level copy goes through the copy engine and pays
       per-copy overhead. *)
    if st.kernel_depth > 0 then begin
      tally_reads st sb bytes;
      st.counters.kernel_writes <- st.counters.kernel_writes +. bytes
    end
    else begin
      st.counters.copies <- st.counters.copies + 1;
      st.counters.copy_bytes <- st.counters.copy_bytes +. bytes
    end;
    match st.mode with
    | Cost_only -> ()
    | Full ->
        List.iter
          (fun idx ->
            let so = capply six idx and dof = capply dix idx in
            (match st.tracer with
            | Some tr when st.kernel_depth > 0 ->
                Trace.kernel_read tr ~bid:sb.bid ~off:so;
                Trace.kernel_write tr ~bid:db.bid ~off:dof
            | _ -> ());
            move_cell sb db elt so dof)
          (indices shape)
  end

(* ---------------------------------------------------------------- *)
(* Concrete slicing of index functions                               *)
(* ---------------------------------------------------------------- *)

let cslice_triplet env (sds : slice_dim list) (ix : cixfn) : cixfn =
  match ix with
  | [] -> err "exec: slicing empty ixfn"
  | l :: rest ->
      if List.length sds <> List.length l.cdims then
        err "exec: triplet slice rank mismatch";
      let off = ref l.coff in
      let dims =
        List.concat
          (List.map2
             (fun sd (_, s) ->
               match sd with
               | SFix i ->
                   off := !off + (eval_poly env i * s);
                   []
               | SRange { start; len; step } ->
                   off := !off + (eval_poly env start * s);
                   [ (eval_poly env len, eval_poly env step * s) ])
             sds l.cdims)
      in
      { coff = !off; cdims = dims } :: rest

(* Merge adjacent concrete dims (flatten), required for LMAD slicing. *)
let cflatten (l : clmad) : clmad option =
  let rec go = function
    | [] -> Some [ (1, 1) ]
    | [ d ] -> Some [ d ]
    | (n1, s1) :: rest -> (
        match go rest with
        | Some ((n2, s2) :: rest') when s1 = n2 * s2 ->
            Some ((n1 * n2, s2) :: rest')
        | _ -> None)
  in
  match go l.cdims with
  | Some [ d ] -> Some { coff = l.coff; cdims = [ d ] }
  | Some [] -> Some { coff = l.coff; cdims = [ (1, 1) ] }
  | _ -> None

let cslice_lmad env (slc : Lmad.t) (ix : cixfn) : cixfn =
  match ix with
  | [] -> err "exec: slicing empty ixfn"
  | l :: rest -> (
      match cflatten l with
      | None -> err "exec: LMAD slice of non-flattenable layout"
      | Some flat ->
          let base_s = match flat.cdims with [ (_, s) ] -> s | _ -> 1 in
          let coff = flat.coff + (eval_poly env (Lmad.offset slc) * base_s) in
          let cdims =
            List.map
              (fun d ->
                ( eval_poly env d.Lmad.n,
                  eval_poly env d.Lmad.s * base_s ))
              (Lmad.dims slc)
          in
          { coff; cdims } :: rest)

let cslice env (slc : slice) (ix : cixfn) : cixfn =
  match slc with
  | STriplet sds -> cslice_triplet env sds ix
  | SLmad l -> cslice_lmad env l ix

(* ---------------------------------------------------------------- *)
(* Scalar operations (tolerant in cost-only mode)                    *)
(* ---------------------------------------------------------------- *)

let bin st op a b =
  if st.kernel_depth > 0 then st.counters.flops <- st.counters.flops +. 1.;
  let safe_div x y = if y = 0 && st.mode = Cost_only then 0 else x / y in
  let safe_rem x y = if y = 0 && st.mode = Cost_only then 0 else x mod y in
  match (op, a, b) with
  | Add, AInt x, AInt y -> AInt (x + y)
  | Sub, AInt x, AInt y -> AInt (x - y)
  | Mul, AInt x, AInt y -> AInt (x * y)
  | Div, AInt x, AInt y -> AInt (safe_div x y)
  | Rem, AInt x, AInt y -> AInt (safe_rem x y)
  | Min, AInt x, AInt y -> AInt (min x y)
  | Max, AInt x, AInt y -> AInt (max x y)
  | Add, AFloat x, AFloat y -> AFloat (x +. y)
  | Sub, AFloat x, AFloat y -> AFloat (x -. y)
  | Mul, AFloat x, AFloat y -> AFloat (x *. y)
  | Div, AFloat x, AFloat y -> AFloat (x /. y)
  | Rem, AFloat x, AFloat y -> AFloat (Float.rem x y)
  | Min, AFloat x, AFloat y -> AFloat (Float.min x y)
  | Max, AFloat x, AFloat y -> AFloat (Float.max x y)
  | And, ABool x, ABool y -> ABool (x && y)
  | Or, ABool x, ABool y -> ABool (x || y)
  | _ -> err "exec: ill-typed binop"

let cmp st op a b =
  if st.kernel_depth > 0 then st.counters.flops <- st.counters.flops +. 1.;
  match (op, a, b) with
  | CEq, AInt x, AInt y -> ABool (x = y)
  | CLt, AInt x, AInt y -> ABool (x < y)
  | CLe, AInt x, AInt y -> ABool (x <= y)
  | CEq, AFloat x, AFloat y -> ABool (x = y)
  | CLt, AFloat x, AFloat y -> ABool (x < y)
  | CLe, AFloat x, AFloat y -> ABool (x <= y)
  | CEq, ABool x, ABool y -> ABool (x = y)
  | _ -> err "exec: ill-typed cmp"

let un st op a =
  if st.kernel_depth > 0 then st.counters.flops <- st.counters.flops +. 1.;
  match (op, a) with
  | Neg, AInt x -> AInt (-x)
  | Neg, AFloat x -> AFloat (-.x)
  | Abs, AInt x -> AInt (abs x)
  | Abs, AFloat x -> AFloat (Float.abs x)
  | Sqrt, AFloat x -> AFloat (sqrt (Float.abs x))
  | Exp, AFloat x -> AFloat (exp x)
  | Log, AFloat x -> AFloat (if x <= 0. then 0. else log x)
  | Not, ABool x -> ABool (not x)
  | ToF64, AInt x -> AFloat (float_of_int x)
  | ToI64, AFloat x -> AInt (int_of_float x)
  | _ -> err "exec: ill-typed unop"

let eval_atom env = function
  | Var v -> lookup env v
  | Int i -> AInt i
  | Float f -> AFloat f
  | Bool b -> ABool b

(* ---------------------------------------------------------------- *)
(* Memory info of a pattern element                                   *)
(* ---------------------------------------------------------------- *)

let mem_info_of pe =
  match pe.pmem with
  | Some m -> m
  | None -> err "exec: %s has no memory annotation" pe.pv

let bind_result env pe (v : aval) = SM.add pe.pv v env

(* The destination (block, ixfn) a pattern element is annotated with.
   Binding a fresh occupant into a freed block (a scratch declaration
   ahead of the kernel that fills it) reclaims it from the pool. *)
let dest_of st env pe =
  let m = mem_info_of pe in
  let b = lookup_block env m.block in
  if b.freed then pool_revive st b;
  (b, concretize env m.ixfn)

let arr_of_pat st env pe =
  match pe.pt with
  | TArr (elt, shape) ->
      let block, ix = dest_of st env pe in
      AArr { elt; shape = List.map (eval_poly env) shape; block; ix }
  | _ -> err "exec: %s is not an array pattern" pe.pv

(* ---------------------------------------------------------------- *)
(* Expression execution                                              *)
(* ---------------------------------------------------------------- *)

let block_counter = ref 0

let rec exec_exp st env (s : stm) : aval list =
  let e = s.exp in
  match e with
  | EAtom a -> [ eval_atom env a ]
  | EBin (op, a, b) -> [ bin st op (eval_atom env a) (eval_atom env b) ]
  | ECmp (op, a, b) -> [ cmp st op (eval_atom env a) (eval_atom env b) ]
  | EUn (op, a) -> [ un st op (eval_atom env a) ]
  | EIdx p -> [ AInt (eval_poly env p) ]
  | EIndex (v, idxs) ->
      let a = lookup_arr env v in
      let is = List.map (eval_poly env) idxs in
      [ read_cell st a.block a.elt (capply a.ix is) ]
  | ESlice (v, _) | ETranspose (v, _) | EReshape (v, _) | EReverse (v, _) ->
      (* O(1): the result's annotation holds the transformed ixfn *)
      let a = lookup_arr env v in
      let pe = List.hd s.pat in
      let _, ix = dest_of st env pe in
      [
        AArr
          {
            elt = a.elt;
            shape =
              (match pe.pt with
              | TArr (_, shape) -> List.map (eval_poly env) shape
              | _ -> err "exec: view with non-array pattern");
            block = a.block;
            ix;
          };
      ]
  | EIota n ->
      let pe = List.hd s.pat in
      let out = arr_of_pat st env pe in
      let n = eval_poly env n in
      launch_kernel st ~label:pe.pv
        ~declared:(fun () -> (pat_footprints env s, [], n))
        (fun () ->
          match out with
          | AArr o ->
              (match st.mode with
              | Full ->
                  for i = 0 to n - 1 do
                    write_cell st o.block o.elt (capply o.ix [ i ]) (AInt i)
                  done
              | Cost_only ->
                  st.counters.kernel_writes <-
                    st.counters.kernel_writes +. (float_of_int n *. elem_bytes));
              [ out ]
          | _ -> Core.Fault.internal ~where:"Exec.iota" "scalar destination")
  | EReplicate (_, a) ->
      let pe = List.hd s.pat in
      let out = arr_of_pat st env pe in
      let v = eval_atom env a in
      launch_kernel st ~label:pe.pv
        ~declared:(fun () ->
          ( pat_footprints env s,
            [],
            match out with AArr o -> count o.shape | _ -> 0 ))
        (fun () ->
          match out with
          | AArr o ->
              let n = count o.shape in
              (match st.mode with
              | Full ->
                  List.iter
                    (fun idx -> write_cell st o.block o.elt (capply o.ix idx) v)
                    (indices o.shape)
              | Cost_only ->
                  st.counters.kernel_writes <-
                    st.counters.kernel_writes +. (float_of_int n *. elem_bytes));
              [ out ]
          | _ ->
              Core.Fault.internal ~where:"Exec.replicate" "scalar destination")
  | EScratch _ ->
      (* no writes: just bind the destination *)
      [ arr_of_pat st env (List.hd s.pat) ]
  | ECopy v ->
      let a = lookup_arr env v in
      let pe = List.hd s.pat in
      let db, dix = dest_of st env pe in
      copy_logical st a.elt a.shape a.block a.ix db dix;
      [ AArr { a with block = db; ix = dix } ]
  | EConcat vs ->
      let pe = List.hd s.pat in
      let out = arr_of_pat st env pe in
      (match out with
      | AArr o ->
          let row = ref 0 in
          List.iter
            (fun v ->
              let a = lookup_arr env v in
              let d0 = List.hd a.shape in
              let slc =
                SRange
                  { start = P.const !row; len = P.const d0; step = P.one }
                :: List.map
                     (fun d -> SRange { start = P.zero; len = P.const d; step = P.one })
                     (List.tl a.shape)
              in
              let dix = cslice_triplet env slc o.ix in
              copy_logical st a.elt a.shape a.block a.ix o.block dix;
              row := !row + d0)
            vs
      | _ ->
          Core.Fault.internal ~where:"Exec.concat" "scalar destination");
      [ out ]
  | EUpdate { dst; slc; src } -> (
      let d = lookup_arr env dst in
      let tix = cslice env slc d.ix in
      match src with
      | SrcScalar a ->
          let v = eval_atom env a in
          write_cell st d.block d.elt (capply tix []) v;
          [ AArr d ]
      | SrcArr sv ->
          let sa = lookup_arr env sv in
          copy_logical st sa.elt sa.shape sa.block sa.ix d.block tix;
          [ AArr d ])
  | EMap { nest; body } -> exec_map st env s nest body
  | EReduce { op; ne; arr } ->
      let a = lookup_arr env arr in
      let n = count a.shape in
      launch_kernel st
        ~label:(match s.pat with pe :: _ -> pe.pv | [] -> "reduce")
        ~declared:(fun () -> ([], [ arr_footprint arr a ], n))
        (fun () ->
          match st.mode with
          | Full ->
              let acc = ref (eval_atom env ne) in
              for i = 0 to n - 1 do
                acc := bin st op !acc (read_cell st a.block a.elt (capply a.ix [ i ]))
              done;
              [ !acc ]
          | Cost_only ->
              tally_reads st a.block (float_of_int n *. elem_bytes);
              st.counters.flops <- st.counters.flops +. float_of_int n;
              [ eval_atom env ne ])
  | EArgmin arr ->
      let a = lookup_arr env arr in
      let n = count a.shape in
      launch_kernel st
        ~label:(match s.pat with pe :: _ -> pe.pv | [] -> "argmin")
        ~declared:(fun () -> ([], [ arr_footprint arr a ], n))
        (fun () ->
          match st.mode with
          | Full ->
              let best = ref infinity and besti = ref 0 in
              for i = 0 to n - 1 do
                match read_cell st a.block a.elt (capply a.ix [ i ]) with
                | AFloat x ->
                    if x < !best then (
                      best := x;
                      besti := i)
                | _ -> err "exec: argmin over non-float"
              done;
              [ AFloat !best; AInt !besti ]
          | Cost_only ->
              tally_reads st a.block (float_of_int n *. elem_bytes);
              st.counters.flops <- st.counters.flops +. float_of_int n;
              [ AFloat 0.5; AInt 0 ])
  | ELoop { params; var; bound; body } ->
      let n = eval_poly env bound in
      let run_iter vals i =
        let env' =
          List.fold_left2
            (fun acc (pe, _) v -> SM.add pe.pv v acc)
            env params vals
        in
        let env' = SM.add var (AInt i) env' in
        exec_block st env' body
      in
      let scalar_carry =
        List.exists (fun (pe, _) -> pe.pt = TScalar I64) params
      in
      if st.mode = Cost_only && n >= 24 && not scalar_carry then begin
        (* Simpson-sampled loop: run iterations 0, n/2 and n-1 from the
           initial state and charge n * (d0 + 4*dmid + dlast)/6 - exact
           for per-iteration costs up to quadratic in the index (NW's
           wavefront, LUD's shrinking interior). *)
        let init = List.map (fun (_, init) -> eval_atom env init) params in
        let base = Device.clone st.counters in
        (* The per-kernel read tallies are part of the sampled state:
           when the loop itself runs inside a kernel (NN's per-thread
           scan) its reads accumulate in [kernel_reads_tally], not in
           the counters, so they must be snapshotted and extrapolated
           with the same Simpson weights or the perfect-L2 cap would
           see only the three sampled iterations' reads.  At top level
           every launch drains its own tally and the deltas are empty. *)
        let tally_list () =
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.kernel_reads_tally []
        in
        let tally_restore snap =
          Hashtbl.reset st.kernel_reads_tally;
          List.iter
            (fun (k, v) -> Hashtbl.replace st.kernel_reads_tally k v)
            snap
        in
        let tally_delta before =
          Hashtbl.fold
            (fun bid (bytes, bsize) acc ->
              let prev =
                match List.assoc_opt bid before with
                | Some (b, _) -> b
                | None -> 0.
              in
              if bytes > prev then (bid, bytes -. prev, bsize) :: acc else acc)
            st.kernel_reads_tally []
        in
        let tbase = tally_list () in
        let sample i =
          let before = Device.clone st.counters in
          let u_before = st.unfreed in
          let tbefore = tally_list () in
          let vals = run_iter init i in
          let after = Device.clone st.counters in
          let tdelta = tally_delta tbefore in
          Device.assign st.counters before;
          st.unfreed <- u_before;
          tally_restore tbefore;
          (vals, before, after, tdelta)
        in
        let vals0, b0, a0, t0 = sample 0 in
        (* Pool steady state: iteration 0 ran against the live pool (a
           cold start, so its allocations miss); its in-body frees plus
           the emulated death of its carried generation bring the pool
           to the state an arbitrary later iteration starts from, which
           the mid/last samples then see (their allocations hit).  The
           Simpson weights turn that into ~n/6 misses + ~5n/6 hits,
           against n misses with the pool disabled. *)
        (if st.kernel_depth = 0 && st.pool <> None then begin
           let init_bids =
             List.filter_map
               (function AArr a -> Some a.block.bid | _ -> None)
               init
           in
           let u = st.unfreed in
           List.iter
             (function
               | AArr a when not (List.mem a.block.bid init_bids) ->
                   pool_free st a.block
               | _ -> ())
             vals0;
           (* the sampled blocks' lifetimes were already reverted with
              the counters; only the pool's free-list state is meant
              to advance here *)
           st.unfreed <- u
         end);
        let psteady = Option.map Device.Pool.snapshot st.pool in
        let _, bm, am, tm = sample (n / 2) in
        (match (st.pool, psteady) with
        | Some p, Some s -> Device.Pool.restore p s
        | _ -> ());
        let vals, bl, al, tl = sample (n - 1) in
        Device.assign st.counters base;
        Device.add_simpson st.counters (b0, a0) (bm, am) (bl, al)
          (float_of_int n);
        tally_restore tbase;
        let wf d0 dm dl =
          float_of_int n *. (d0 +. (4. *. dm) +. dl) /. 6.0
        in
        let find bid ts =
          match List.find_opt (fun (b, _, _) -> b = bid) ts with
          | Some (_, d, _) -> d
          | None -> 0.
        in
        let bsize_of bid =
          List.find_map
            (fun (b, _, sz) -> if b = bid then Some sz else None)
            (t0 @ tm @ tl)
        in
        List.iter
          (fun bid ->
            let d = wf (find bid t0) (find bid tm) (find bid tl) in
            match bsize_of bid with
            | Some bsize when d > 0. ->
                let prev =
                  match Hashtbl.find_opt st.kernel_reads_tally bid with
                  | Some (b, _) -> b
                  | None -> 0.
                in
                Hashtbl.replace st.kernel_reads_tally bid (prev +. d, bsize)
            | _ -> ())
          (List.sort_uniq compare
             (List.map (fun (b, _, _) -> b) (t0 @ tm @ tl)));
        vals
      end
      else begin
        let vals = ref (List.map (fun (_, init) -> eval_atom env init) params) in
        for i = 0 to n - 1 do
          let prev = !vals in
          vals := run_iter prev i;
          (* A carried array whose block leaves the carried set dies
             here: its last read was inside this iteration's body.
             The static analysis attributes the carried value's
             liveness to the loop statement as a whole, so without
             this marker the trace would date the block's death to
             the previous iteration's intra-body markers - before its
             final read. *)
          if st.kernel_depth = 0 then begin
            let new_bids =
              List.filter_map
                (function AArr a -> Some a.block.bid | _ -> None)
                !vals
            in
            List.iter2
              (fun (pe, _) v ->
                match v with
                | AArr a when not (List.mem a.block.bid new_bids) ->
                    (match st.tracer with
                    | Some tr -> Trace.last_use tr ~var:pe.pv ~bid:a.block.bid
                    | None -> ());
                    pool_free st a.block
                | _ -> ())
              params prev
          end
        done;
        !vals
      end
  | EIf { cond; tb; fb } -> (
      match eval_atom env cond with
      | ABool true -> exec_block st env tb
      | ABool false -> exec_block st env fb
      | _ -> err "exec: non-boolean condition")
  | EAlloc size ->
      incr block_counter;
      let n = eval_poly env size in
      let b =
        {
          bid = !block_counter;
          bname = Printf.sprintf "blk%d" !block_counter;
          bsize = n;
          payload = None;
          devbytes = 0.;
          freed = false;
        }
      in
      if st.kernel_depth = 0 then begin
        st.counters.allocs <- st.counters.allocs + 1;
        st.alloc_seq <- st.alloc_seq + 1;
        (* arena blocks (introduced by the packing pass) are ordinary
           device allocations - one pool transaction each - but counted
           separately so the bench surface can report suballocation *)
        let bytes = float_of_int n *. elem_bytes in
        (match s.pat with
        | [ pe ] when Core.Pack.is_arena pe.pv ->
            st.counters.arena_allocs <- st.counters.arena_allocs + 1;
            st.counters.arena_bytes <- st.counters.arena_bytes +. bytes
        | _ -> ());
        st.counters.alloc_bytes <- st.counters.alloc_bytes +. bytes;
        st.counters.live_bytes <- st.counters.live_bytes +. bytes;
        if st.counters.live_bytes > st.counters.peak_bytes then
          st.counters.peak_bytes <- st.counters.live_bytes;
        (* [devbytes > 0] marks the block as device-owned so its death
           is accounted (free list push, or a counted synchronizing
           free when the pool is off); a pool hit overrides it with the
           possibly larger served capacity. *)
        b.devbytes <- bytes;
        st.unfreed <- st.unfreed + 1;
        if st.oom_at > 0 && st.alloc_seq = st.oom_at then
          device_fault st
            (Core.Fault.Device_oom { bytes; at_alloc = st.alloc_seq });
        (match st.pool with
        | Some p -> (
            match Device.Pool.refuses p bytes with
            | Some cap when st.strict_cap ->
                device_fault st (Core.Fault.Pool_cap { bytes; cap })
            | _ -> ())
        | None -> ());
        match st.pool with
        | Some p -> (
            match Device.Pool.alloc p bytes with
            | `Hit served ->
                st.counters.pool_hits <- st.counters.pool_hits + 1;
                b.devbytes <- served
            | `Miss ev ->
                st.counters.pool_misses <- st.counters.pool_misses + 1;
                (* cap evictions are real device frees: each one pays
                   the synchronizing free cost in the time model *)
                st.counters.frees <- st.counters.frees + ev)
        | None -> ()
      end
      else begin
        (* per-thread scratch: lives only for the kernel's duration,
           but while the kernel is in flight every thread's copy exists
           at once, so it counts toward the peak *)
        st.counters.scratch_allocs <- st.counters.scratch_allocs + 1;
        st.alloc_seq <- st.alloc_seq + 1;
        let bytes = float_of_int n *. elem_bytes in
        st.counters.scratch_bytes <- st.counters.scratch_bytes +. bytes;
        st.kernel_scratch <- st.kernel_scratch +. bytes;
        if st.counters.live_bytes +. st.kernel_scratch > st.counters.peak_bytes
        then
          st.counters.peak_bytes <-
            st.counters.live_bytes +. st.kernel_scratch;
        if st.oom_at > 0 && st.alloc_seq = st.oom_at then
          device_fault st
            (Core.Fault.Device_oom { bytes; at_alloc = st.alloc_seq })
      end;
      (match st.tracer with
      | Some tr ->
          Trace.alloc tr ~bid:b.bid ~name:b.bname ~elems:n
            ~in_kernel:(st.kernel_depth > 0)
      | None -> ());
      [ AMem b ]

and launch_kernel st ~label ~declared f =
  (* nested parallelism is flattened on a GPU: only top-level mapnests
     pay a launch *)
  let top = st.kernel_depth = 0 in
  let r0 = st.counters.kernel_reads and w0 = st.counters.kernel_writes in
  if top then begin
    st.counters.kernels <- st.counters.kernels + 1;
    st.kernel_scratch <- 0.;
    Hashtbl.reset st.kernel_reads_tally;
    (* the read-after-own-write suppression is per thread; without
       this reset a reduce/argmin launch inherits the previous
       kernel's final thread and under-counts its first-touch reads *)
    Hashtbl.reset st.thread_writes;
    match st.tracer with
    | Some tr ->
        let declared_writes, declared_reads, threads = declared () in
        Trace.kernel_begin tr ~label ~threads ~declared_writes ~declared_reads
    | None -> ()
  end;
  st.kernel_depth <- st.kernel_depth + 1;
  (* depth must be restored even when the body raises (an injected
     device fault in non-fail-safe mode, a checker exception): a stuck
     nonzero depth would misclassify every later top-level allocation
     as kernel scratch and corrupt the free accounting *)
  let r =
    Fun.protect
      ~finally:(fun () -> st.kernel_depth <- st.kernel_depth - 1)
      f
  in
  if top then begin
    (* perfect-L2: a kernel reads each block location from DRAM once *)
    Hashtbl.iter
      (fun _ (bytes, bsize) ->
        st.counters.kernel_reads <-
          st.counters.kernel_reads
          +. Float.min bytes (float_of_int bsize *. elem_bytes))
      st.kernel_reads_tally;
    if st.counters.live_bytes +. st.kernel_scratch > st.counters.peak_bytes
    then
      st.counters.peak_bytes <- st.counters.live_bytes +. st.kernel_scratch;
    st.kernel_scratch <- 0.;
    match st.tracer with
    | Some tr ->
        Trace.kernel_end tr
          ~read_bytes:(st.counters.kernel_reads -. r0)
          ~write_bytes:(st.counters.kernel_writes -. w0)
    | None -> ()
  end;
  r

(* Mapnest execution: one kernel; full mode iterates every thread,
   cost-only samples the midpoint thread and scales. *)
and exec_map st env (s : stm) nest body : aval list =
  let dims = List.map (fun (_, n) -> eval_poly env n) nest in
  let points = count dims in
  let outs = List.map (fun pe -> arr_of_pat st env pe) s.pat in
  let run_thread env idx =
    Hashtbl.reset st.thread_writes;
    let env' =
      List.fold_left2
        (fun acc (v, _) i -> SM.add v (AInt i) acc)
        env nest idx
    in
    let results = exec_block st env' body in
    (* implicit write of each per-thread result into its slot *)
    List.iter2
      (fun out r ->
        match (out, r) with
        | AArr o, AArr ra ->
            let slc =
              List.map (fun i -> SFix (P.const i)) idx
              @ List.map
                  (fun d ->
                    SRange { start = P.zero; len = P.const d; step = P.one })
                  ra.shape
            in
            let slot = cslice_triplet env' slc o.ix in
            copy_logical st ra.elt ra.shape ra.block ra.ix o.block slot
        | AArr o, (AFloat _ | AInt _ | ABool _) ->
            write_cell st o.block o.elt (capply o.ix idx) r
        | _ -> err "exec: mapnest result mismatch")
      outs results
  in
  launch_kernel st
    ~label:(match s.pat with pe :: _ -> pe.pv | [] -> "map")
    ~declared:(fun () ->
      ( pat_footprints env s @ body_dest_footprints env body [],
        read_footprints env body,
        points ))
    (fun () ->
      (match st.mode with
      | Full -> List.iter (fun idx -> run_thread env idx) (indices dims)
      | Cost_only ->
          if points > 0 then begin
            let mid = List.map (fun d -> d / 2) dims in
            let snap = snapshot st.counters in
            let ks0 = st.kernel_scratch in
            run_thread env mid;
            scale_delta st.counters snap (float_of_int points);
            (* every thread holds its own scratch while the kernel is
               in flight *)
            st.kernel_scratch <-
              ks0 +. ((st.kernel_scratch -. ks0) *. float_of_int points);
            if
              st.counters.live_bytes +. st.kernel_scratch
              > st.counters.peak_bytes
            then
              st.counters.peak_bytes <-
                st.counters.live_bytes +. st.kernel_scratch;
            (* scale the per-block read tallies by the thread count
               (capping happens when the kernel retires) *)
            let scaled =
              Hashtbl.fold
                (fun bid (bytes, bsize) acc ->
                  (bid, (bytes *. float_of_int points, bsize)) :: acc)
                st.kernel_reads_tally []
            in
            Hashtbl.reset st.kernel_reads_tally;
            List.iter
              (fun (bid, v) -> Hashtbl.replace st.kernel_reads_tally bid v)
              scaled
          end);
      outs)

and snapshot (c : Device.counters) =
  Device.
    ( c.kernel_writes,
      c.flops,
      c.copies,
      c.copy_bytes,
      c.copies_elided,
      c.elided_bytes,
      c.scratch_allocs,
      c.scratch_bytes )

(* Scale the per-thread cost deltas by the thread count (the kernel
   launch itself is not scaled).  Per-thread copies are GPU-side
   gather/scatter, so their count is folded into traffic rather than
   per-copy overhead. *)
and scale_delta (c : Device.counters) snap factor =
  let w0, f0, cp0, cb0, ce0, eb0, sa0, sb0 = snap in
  let open Device in
  c.kernel_writes <- w0 +. ((c.kernel_writes -. w0) *. factor);
  c.flops <- f0 +. ((c.flops -. f0) *. factor);
  c.copies <- cp0 + (if c.copies > cp0 then 1 else 0);
  c.copy_bytes <- cb0 +. ((c.copy_bytes -. cb0) *. factor);
  c.copies_elided <- ce0 + (if c.copies_elided > ce0 then 1 else 0);
  c.elided_bytes <- eb0 +. ((c.elided_bytes -. eb0) *. factor);
  c.scratch_allocs <-
    sa0
    + int_of_float
        (Float.round (float_of_int (c.scratch_allocs - sa0) *. factor));
  c.scratch_bytes <- sb0 +. ((c.scratch_bytes -. sb0) *. factor)

and exec_block st env (b : block) : aval list =
  let res_vars =
    List.filter_map (function Var v -> Some v | _ -> None) b.res
  in
  (* Annotated block names of result variables bound by this block's
     own statements.  A result variable bound by a LATER statement is
     not yet in [env] while earlier statements execute, so its block
     id must be resolved through the annotation name (the [EAlloc]
     precedes any use of the block) - otherwise a last-use marker for
     a co-resident variable would date the block's death before a
     later in-block write (the rotated-loop pattern). *)
  let res_blocks =
    List.fold_left
      (fun m (s : Ir.Ast.stm) ->
        List.fold_left
          (fun m (pe : Ir.Ast.pat_elem) ->
            match pe.pmem with
            | Some mi when List.mem pe.pv res_vars -> SM.add pe.pv mi.block m
            | _ -> m)
          m s.pat)
      SM.empty b.stms
  in
  let env =
    List.fold_left
      (fun env s ->
        let vals = exec_exp st env s in
        if List.length vals <> List.length s.pat then
          err "exec: arity mismatch";
        let env = List.fold_left2 bind_result env s.pat vals in
        (* Liveness markers are only meaningful at top level: inside a
           kernel the same body runs once per thread, and per-thread
           "deaths" say nothing about the cross-kernel liveness the
           short-circuiting pass consumed. *)
        (if st.kernel_depth = 0 then
           (* A block aliased by a value this lexical block returns
              provably flows past every statement here (a rotated
              loop re-reads the carried buffer next iteration; a
              result block is read by the enclosing code), so a
              last-use marker for a variable living in it would date
              the block's death too early. *)
           let res_bids =
             List.filter_map
               (fun v ->
                 match SM.find_opt v env with
                 | Some (AArr a) -> Some a.block.bid
                 | Some (AMem blk) -> Some blk.bid
                 | _ -> (
                     (* not bound yet: a later statement in this
                        block binds it - resolve the annotated block
                        name instead *)
                     match SM.find_opt v res_blocks with
                     | Some bname -> (
                         match SM.find_opt bname env with
                         | Some (AMem blk) -> Some blk.bid
                         | _ -> None)
                     | None -> None))
               res_vars
           in
           List.iter
             (fun v ->
               match SM.find_opt v env with
               | Some (AArr a) when not (List.mem a.block.bid res_bids) ->
                   (match st.tracer with
                   | Some tr -> Trace.last_use tr ~var:v ~bid:a.block.bid
                   | None -> ());
                   pool_free st a.block
               | _ -> ())
             s.last_uses);
        env)
      env b.stms
  in
  List.map (eval_atom env) b.res

(* ---------------------------------------------------------------- *)
(* Program entry                                                     *)
(* ---------------------------------------------------------------- *)

(* Wrap an input Value into (env additions): arrays get their own block
   filled with the data (Full) or left virtual (Cost_only). *)
let bind_param st env pe (v : Value.t) : env =
  match (pe.pt, v) with
  | TScalar _, Value.VInt i -> SM.add pe.pv (AInt i) env
  | TScalar _, Value.VFloat f -> SM.add pe.pv (AFloat f) env
  | TScalar _, Value.VBool b -> SM.add pe.pv (ABool b) env
  | TArr (elt, _), Value.VArr a ->
      let m = mem_info_of pe in
      incr block_counter;
      let n = Value.count a.Value.shape in
      let blk =
        {
          bid = !block_counter;
          bname = m.block;
          bsize = n;
          payload = None;
          devbytes = 0.;
          freed = false;
        }
      in
      (match st.mode with
      | Full ->
          let p = ensure_payload blk elt in
          (match (p, a.Value.data) with
          | PF d, Value.DF s -> Array.blit s 0 d 0 n
          | PI d, Value.DI s -> Array.blit s 0 d 0 n
          | PB d, Value.DB s -> Array.blit s 0 d 0 n
          | _ -> err "exec: param payload mismatch")
      | Cost_only -> ());
      (match st.tracer with
      | Some tr ->
          Trace.alloc tr ~bid:blk.bid ~name:m.block ~elems:n ~in_kernel:false
      | None -> ());
      let env = SM.add m.block (AMem blk) env in
      SM.add pe.pv
        (AArr
           {
             elt;
             shape = a.Value.shape;
             block = blk;
             ix =
               [
                 {
                   coff = 0;
                   cdims =
                     (let rec strides = function
                        | [] -> []
                        | [ _ ] -> [ 1 ]
                        | _ :: rest ->
                            let ss = strides rest in
                            (match (rest, ss) with
                            | n :: _, s :: _ -> n * s
                            | _ ->
                                Core.Fault.internal ~where:"Exec.strides"
                                  "stride list out of step with shape")
                            :: ss
                      in
                      List.combine a.Value.shape (strides a.Value.shape));
                 };
               ];
           })
        env
  | _ -> err "exec: bad argument for %s" pe.pv

(* Read an array value back out of device memory. *)
let materialize st (v : aval) : Value.t =
  match v with
  | AInt i -> Value.VInt i
  | AFloat f -> Value.VFloat f
  | ABool b -> Value.VBool b
  | AMem _ -> Value.VMem 0
  | AArr a -> (
      match st.mode with
      | Cost_only -> Value.VArr (Value.shell a.elt a.shape)
      | Full ->
          let out = Value.zeros a.elt a.shape in
          List.iteri
            (fun i idx ->
              let cell =
                match read_cell st a.block a.elt (capply a.ix idx) with
                | AFloat f -> Value.VFloat f
                | AInt x -> Value.VInt x
                | ABool b -> Value.VBool b
                | _ ->
                    Core.Fault.internal ~where:"Exec.materialize"
                      "array cell read back as an array"
              in
              Value.set_flat out i cell)
            (indices a.shape);
          Value.VArr out)

type report = {
  results : Value.t list;
  counters : Device.counters;
  trace : Trace.t option;
  pool : Device.Pool.stats option;
  faults : Core.Fault.t list;
}

let run ?(mode = Full) ?(trace = false) ?(pool = true) ?pool_cap
    ?(variant = "program") ?mutation ?(fail_safe = true)
    ?(strict_cap = false) ?(oom_at = 0) (p : prog) (args : Value.t list) :
    report =
  let tracer =
    if trace then
      Some
        (Trace.create ~program:p.name ~variant ~exact:(mode = Full) ())
    else None
  in
  let st =
    {
      mode;
      counters = Device.fresh_counters ();
      tracer;
      mutation;
      pool =
        (if pool then Some (Device.Pool.create ?cap:pool_cap ())
         else None);
      fail_safe;
      strict_cap;
      oom_at;
      alloc_seq = 0;
      exec_faults = [];
      unfreed = 0;
      kernel_depth = 0;
      kernel_scratch = 0.;
      thread_writes = Hashtbl.create 256;
      kernel_reads_tally = Hashtbl.create 64;
    }
  in
  if List.length args <> List.length p.params then
    err "exec: %s expects %d arguments" p.name (List.length p.params);
  let env =
    List.fold_left2 (fun env pe v -> bind_param st env pe v) SM.empty p.params
      args
  in
  (* Teardown: without a pool, every device allocation is eventually
     matched by a synchronizing [cudaFree] - blocks that died mid-run
     were already counted by [pool_free]; top up with the frees of the
     [unfreed] blocks still live when the program hands back its
     results (an outstanding-block count, not [allocs - frees]: after
     a mid-run pool degradation the flush evictions already sit in
     [frees], and an absolute top-up would double-count them).  A
     pooled run tears the whole arena down in one context destruction
     instead, which is why [frees] stays 0 there.  Guarded so it runs
     exactly once, and [Fun.protect] runs it even when the executor
     raises mid-kernel - counters stay consistent under injected
     faults. *)
  let torn_down = ref false in
  let teardown () =
    if not !torn_down then begin
      torn_down := true;
      if st.pool = None then
        match st.mode with
        | Full ->
            st.counters.frees <- st.counters.frees + st.unfreed;
            st.unfreed <- 0
        | Cost_only ->
            (* sampled counters are Simpson extrapolations, so the
               outstanding-block count cannot be matched against them;
               keep the legacy absolute top-up *)
            if st.counters.allocs > st.counters.frees then
              st.counters.frees <- st.counters.allocs
    end
  in
  let res =
    Fun.protect ~finally:teardown (fun () -> exec_block st env p.body)
  in
  (* reading back results is not part of the measured cost (or trace) *)
  let saved = st.counters.kernel_reads in
  Option.iter Trace.mute st.tracer;
  let results = List.map (materialize st) res in
  st.counters.kernel_reads <- saved;
  {
    results;
    counters = st.counters;
    trace = tracer;
    pool = Option.map Device.Pool.stats st.pool;
    faults = List.rev st.exec_faults;
  }

(* Simulated time on a device for a completed run. *)
let time device (r : report) = Device.time device r.counters
