(** Device profiles and the cost model standing in for the paper's
    NVIDIA A100 / AMD MI100 testbeds (DESIGN.md, substitution 1).

    The executor counts events; {!time} converts them to simulated wall
    time: kernels follow a roofline with partial overlap of memory and
    compute, copies stream through the copy engine, and every
    launch/allocation pays an overhead.  The relative benchmark results
    (the paper's Unopt/Opt/Ref ratios) derive from the counted traffic,
    not from the absolute constants. *)

type t = {
  name : string;
  mem_bandwidth : float;  (** bytes/s achievable global-memory bandwidth *)
  copy_bandwidth : float;  (** bytes/s for pure copies (read+write streams) *)
  flop_throughput : float;  (** scalar-op units per second *)
  kernel_overhead : float;  (** seconds per kernel launch *)
  copy_overhead : float;  (** seconds per copy-engine operation *)
  alloc_overhead : float;  (** seconds per (pooled) allocation *)
}

val a100 : t
(** NVIDIA A100 (SXM, 80 GB): 1555 GB/s HBM2e. *)

val mi100 : t
(** AMD MI100: 1228.8 GB/s HBM2. *)

(** Event counters accumulated by the executor. *)
type counters = {
  mutable kernels : int;
  mutable kernel_reads : float;  (** DRAM bytes read by kernels *)
  mutable kernel_writes : float;  (** bytes written by kernels *)
  mutable flops : float;  (** scalar operations inside kernels *)
  mutable copies : int;  (** top-level copy operations performed *)
  mutable copy_bytes : float;
  mutable copies_elided : int;  (** copies skipped by short-circuiting *)
  mutable elided_bytes : float;
  mutable allocs : int;
  mutable alloc_bytes : float;
  mutable scratch_allocs : int;
      (** per-thread allocations made inside kernels (CUDA local-memory
          model); not charged {!type-t.alloc_overhead} but counted
          toward {!peak_bytes} for the duration of their kernel *)
  mutable scratch_bytes : float;
  mutable peak_bytes : float;
      (** high-water mark of [live_bytes] plus any in-flight kernel
          scratch *)
  mutable live_bytes : float;
}

val fresh_counters : unit -> counters

val overlap : float
(** Fraction of the smaller roofline term hidden behind the larger. *)

val time : t -> counters -> float
(** Simulated execution time of the counted events on the device. *)

val clone : counters -> counters
val assign : counters -> counters -> unit

val add_simpson :
  counters -> counters * counters -> counters * counters ->
  counters * counters -> float -> unit
(** [add_simpson dst (b0,a0) (bm,am) (bl,al) n] adds the
    Simpson-weighted loop estimate [n * (d0 + 4*dmid + dlast) / 6]
    built from three (before, after) per-iteration snapshots; integer
    fields are rounded once on the combined value. *)

val pp_counters : Format.formatter -> counters -> unit
