(** Device profiles and the cost model standing in for the paper's
    NVIDIA A100 / AMD MI100 testbeds (DESIGN.md, substitution 1).

    The executor counts events; {!time} converts them to simulated wall
    time: kernels follow a roofline with partial overlap of memory and
    compute, copies stream through the copy engine, and every
    launch/allocation pays an overhead.  Allocation overhead is
    two-tier: a fresh device allocation costs {!type-t.alloc_miss_cost}
    while one served from the {!Pool} costs the much smaller
    {!type-t.alloc_hit_cost}, which is what makes the reuse pass's
    alloc-count reductions visible as latency.  The relative benchmark
    results (the paper's Unopt/Opt/Ref ratios) derive from the counted
    traffic, not from the absolute constants. *)

type t = {
  name : string;
  mem_bandwidth : float;  (** bytes/s achievable global-memory bandwidth *)
  copy_bandwidth : float;  (** bytes/s for pure copies (read+write streams) *)
  flop_throughput : float;  (** scalar-op units per second *)
  kernel_overhead : float;  (** seconds per kernel launch *)
  copy_overhead : float;  (** seconds per copy-engine operation *)
  alloc_miss_cost : float;  (** seconds per fresh device allocation *)
  alloc_hit_cost : float;  (** seconds per pool-served allocation *)
  free_sync_cost : float;
      (** seconds per device free; [cudaFree]/[hipFree] implicitly
          synchronize the device, which is the very reason caching
          allocators exist.  Pooled frees are free-list pushes and are
          never charged this. *)
}

val a100 : t
(** NVIDIA A100 (SXM, 80 GB): 1555 GB/s HBM2e. *)

val mi100 : t
(** AMD MI100: 1228.8 GB/s HBM2. *)

(** A size-class free-list pool between the executor and the simulated
    device allocator.  Requests are served from the free list of their
    power-of-two size class when possible (a {e hit}); freed blocks
    keep their exact size, giving same-size requests an exact-fit fast
    path.  By default the pool never returns memory to the device,
    mirroring the caching allocators of real array-language runtimes;
    with a [cap] it instead evicts cached free blocks (each a priced,
    synchronizing device free) rather than grow its device footprint
    past the budget. *)
module Pool : sig
  type t

  type snapshot
  (** Deep copy of the pool's free lists and accounting, used by the
      executor to replay sampled loop iterations against a fixed
      steady-state pool. *)

  (** Footprint summary of a run's pool behaviour. *)
  type stats = {
    p_device_bytes : float;  (** total fresh device memory obtained *)
    p_high_water : float;  (** max bytes simultaneously handed out *)
    p_fragmentation : float;
        (** fraction of pool-owned device memory idle even at the
            high-water mark: [(device - high) / device] *)
    p_cap : float option;  (** the device-memory budget, if one was set *)
    p_evictions : int;
        (** cached blocks returned to the device to stay under the cap *)
  }

  val create : ?cap:int -> unit -> t
  (** [create ?cap ()] makes an empty pool.  [cap] (bytes) bounds the
      total device memory the pool will obtain: a miss that would push
      past it first evicts cached free blocks (largest first).  Live
      memory is never refused - the cap only limits cache growth on top
      of it, so a program whose working set exceeds the cap simply sees
      every allocation miss and every free evict. *)

  val alloc : t -> float -> [ `Hit of float | `Miss of int ]
  (** [alloc t bytes] serves a request: [`Hit served] pops a free block
      of device size [served >= bytes]; [`Miss ev] obtains fresh device
      memory of exactly [bytes] after evicting [ev] cached blocks to
      respect the cap (0 when uncapped or under budget; each eviction
      is a synchronizing device free the caller must price).  The
      caller must remember the served size and pass it back to
      {!free}. *)

  val free : t -> float -> unit
  (** Return a block of the given device size to its class free list. *)

  val revive : t -> float -> unit
  (** Undo a premature {!free}: the block's contents are needed after
      all (a later occupant of a coalesced block writes into it).  If
      its capacity is still on the free list it is reclaimed; if
      already re-served, fresh device memory stands in. *)

  val refuses : t -> float -> float option
  (** [refuses t bytes] is [Some cap] when serving [bytes] of {e live}
      memory would push the handed-out total past the cap.  The
      default cap semantics never refuse live memory - this is the
      strict reading the fail-safe executor opts into with
      [--strict-cap], degrading to unpooled execution on refusal. *)

  val flush : t -> int
  (** Release every cached free block (a pool teardown in place),
      returning how many were released; each is a synchronizing device
      free the caller must price.  Used when the executor degrades to
      unpooled execution after a device fault. *)

  val snapshot : t -> snapshot
  val restore : t -> snapshot -> unit

  val stats : t -> stats
  val pp_stats : Format.formatter -> stats -> unit
end

(** Event counters accumulated by the executor. *)
type counters = {
  mutable kernels : int;
  mutable kernel_reads : float;  (** DRAM bytes read by kernels *)
  mutable kernel_writes : float;  (** bytes written by kernels *)
  mutable flops : float;  (** scalar operations inside kernels *)
  mutable copies : int;  (** top-level copy operations performed *)
  mutable copy_bytes : float;
  mutable copies_elided : int;  (** copies skipped by short-circuiting *)
  mutable elided_bytes : float;
  mutable allocs : int;
  mutable alloc_bytes : float;
  mutable arena_allocs : int;
      (** packed-arena allocations among {!allocs}: each arena is one
          device allocation (one pool miss) suballocated to its members
          at the offsets chosen by {!Core.Pack} *)
  mutable arena_bytes : float;
      (** bytes covered by those arena allocations - the executed arena
          extents, so the pack-order A/B gate can compare placement
          orders on an executor-derived surface (lifetime holes make
          this {e smaller} than the members' summed sizes) *)
  mutable scratch_allocs : int;
      (** per-thread allocations made inside kernels (CUDA local-memory
          model); never pooled and not charged allocation overhead, but
          counted toward {!peak_bytes} for the duration of their kernel *)
  mutable scratch_bytes : float;
  mutable pool_hits : int;  (** top-level allocations served by the pool *)
  mutable pool_misses : int;
      (** top-level allocations falling through to the device; with the
          pool disabled both stay 0 and every allocation is charged
          {!type-t.alloc_miss_cost} *)
  mutable frees : int;
      (** synchronizing device frees, charged
          {!type-t.free_sync_cost} each; only accumulated when the pool
          is disabled (pooled frees go to the free lists instead) *)
  mutable peak_bytes : float;
      (** high-water mark of [live_bytes] plus any in-flight kernel
          scratch *)
  mutable live_bytes : float;
}

val fresh_counters : unit -> counters

val overlap : float
(** Fraction of the smaller roofline term hidden behind the larger. *)

val time : t -> counters -> float
(** Simulated execution time of the counted events on the device. *)

val clone : counters -> counters
val assign : counters -> counters -> unit

val add_simpson :
  counters -> counters * counters -> counters * counters ->
  counters * counters -> float -> unit
(** [add_simpson dst (b0,a0) (bm,am) (bl,al) n] adds the
    Simpson-weighted loop estimate [n * (d0 + 4*dmid + dlast) / 6]
    built from three (before, after) per-iteration snapshots; integer
    fields are rounded once on the combined value. *)

val pp_counters : Format.formatter -> counters -> unit
