(** The memory-aware executor: runs memory-annotated programs against
    the GPU cost model.

    Arrays are (block, concrete index function) pairs; change-of-layout
    operations are free; copies at updates, concats, [copy] and mapnest
    result writes are {e elided} whenever the source already lives at
    the destination location - precisely what short-circuiting arranges.
    Full mode computes real values (validated against the reference
    interpreter); cost-only mode runs control flow and sizes exactly but
    samples mapnest bodies at the index-space midpoint and long loops at
    Simpson points, enabling paper-scale datasets.

    The traffic model charges every in-kernel read/write 8 bytes, with
    two locality refinements: a thread's re-reads of locations it wrote
    itself are free (registers/shared memory), and a kernel's total DRAM
    reads from one block are capped at the block's footprint (perfect
    L2 within a launch).

    With [~trace:true] the run additionally produces a {!Core.Trace.t}:
    a structured event log of allocations, kernel launches (with their
    declared-vs-actual footprints), copies and their elision decisions,
    and last-use markers, ready for the {!Core.Memtrace} cross-check. *)

exception Exec_error of string

type mode = Full | Cost_only

(** Fault injection for testing the dynamic checker:
    [Off_by_one_write] shifts every in-kernel cell write by one
    element.  The static annotations are untouched, so {!Core.Memlint}
    still passes - only the {!Core.Memtrace} cross-check of a traced
    run observes the bug. *)
type mutation = Off_by_one_write

type report = {
  results : Ir.Value.t list;
      (** program results; shape-only shells in cost-only mode *)
  counters : Device.counters;
  trace : Core.Trace.t option;  (** present iff run with [~trace:true] *)
  pool : Device.Pool.stats option;
      (** pool footprint summary; present iff run with [~pool:true]
          {e and} the pool survived the run (a contained device fault
          degrades to unpooled execution and drops the pool) *)
  faults : Core.Fault.t list;
      (** device faults contained by the fail-safe degradation, in
          occurrence order; empty on a clean run *)
}

val run :
  ?mode:mode ->
  ?trace:bool ->
  ?pool:bool ->
  ?pool_cap:int ->
  ?variant:string ->
  ?mutation:mutation ->
  ?fail_safe:bool ->
  ?strict_cap:bool ->
  ?oom_at:int ->
  Ir.Ast.prog ->
  Ir.Value.t list ->
  report
(** Execute a memory-annotated program on the given arguments.
    [?trace] (default [false]) collects a {!Core.Trace.t} as the run
    proceeds; [?pool] (default [true]) routes top-level allocations
    through a {!Device.Pool}, splitting the allocation count into pool
    hits and misses for the cost model (disable for an A/B against the
    all-miss allocator); [?pool_cap] (bytes) bounds the pool's device
    footprint - cache evictions forced by the cap are priced as
    synchronizing device frees; [?variant] labels the trace's
    provenance (which pipeline stage produced the program, e.g.
    ["opt"]).

    [?fail_safe] (default [true]) contains device-layer faults by
    degrading to unpooled execution: the pool's cached blocks are
    flushed (priced as synchronizing frees - the degradation penalty)
    and the run continues, recording the fault in {!report.faults};
    with [~fail_safe:false] the fault is raised as {!Core.Fault.Fault}
    instead.  [?strict_cap] (default [false]) makes a [?pool_cap]
    refuse {e live} memory past the cap (a {!Core.Fault.Pool_cap}
    fault), not just bound cache growth.  [?oom_at] (default [0] =
    never) injects a simulated device OOM refusing allocation number
    [oom_at] (1-based, counting top-level and in-kernel scratch
    allocations) - the chaos harness's executor-side fault.

    Offset-exact footprints require [Full] mode; a cost-only trace
    keeps the event structure with sampled traffic numbers.
    @raise Exec_error on missing annotations or out-of-bounds accesses
    (full mode checks bounds on every access). *)

val time : Device.t -> report -> float
(** Simulated time of a completed run on a device profile. *)
