(** A sound, incomplete prover for polynomial (in)equalities over integer
    variables with known symbolic bounds.

    This replaces the external SMT solver the paper used to discharge the
    inequalities produced by the non-overlap theorem (section V-C/V-D).
    All [prove_*] functions are sufficient-condition tests: [true] means
    the fact holds under every assignment satisfying the context; [false]
    means it could not be established (not that it is false). *)

(** Extended integers, used for interval evaluation. *)
module Ext : sig
  type t = NegInf | Fin of int | PosInf

  val add : t -> t -> t
  val mul : t -> t -> t
  val min : t -> t -> t
  val max : t -> t -> t
  val ge0 : t -> bool
  val pp : Format.formatter -> t -> unit
end

type t
(** A proof context: equality rewrites [v := p] plus per-variable
    inclusive bounds (themselves polynomials). *)

val empty : t

val add_eq : t -> string -> Poly.t -> t
(** [add_eq ctx v p] records the rewrite [v := p]; e.g. the NW proof of
    Fig. 9 records [n := q*b + 1].  Existing facts are normalized with
    the new rule.  @raise Invalid_argument if [p] mentions [v]. *)

val add_range : t -> string -> ?lo:Poly.t -> ?hi:Poly.t -> unit -> t
(** Record inclusive bounds for a variable; bounds may be symbolic
    (e.g. a loop index [i] with [hi = q - 1]). *)

val add_lo : t -> string -> Poly.t -> t
val add_hi : t -> string -> Poly.t -> t

val equalities : t -> (string * Poly.t) list
(** The recorded rewrite rules [v := p], in variable order.  Used by the
    certificate checker's concretizer to build admissible assignments
    without re-deriving the context. *)

val var_bounds : t -> (string * Poly.t option * Poly.t option) list
(** The recorded inclusive per-variable bounds [(v, lo, hi)], in
    variable order; [None] for an unconstrained end. *)

val rewrite : t -> Poly.t -> Poly.t
(** Normalize a polynomial with the context's equality rules. *)

val interval : t -> Poly.t -> Ext.t * Ext.t
(** Best-effort inclusive interval for the polynomial's value. *)

val with_deadline : float -> (unit -> 'a) -> 'a
(** [with_deadline budget f] runs [f] with a proof budget of [budget]
    CPU seconds: any [prove_*] search still running past the deadline
    gives up (soundly, answering "not proved").  Nested budgets keep
    the outermost deadline. *)

val prove_nonneg : t -> Poly.t -> bool
(** Entry point of the elimination search.  Before searching, the
    context is {e saturated} with triangular-bound consequences: a
    recorded pair [lo <= v <= hi] implies [hi - lo >= 0], and when
    another variable occurs with a unit coefficient in that gap the
    implication is itself a bound on it (from [0 <= j <= i - 1] and
    [i <= m - 1] follow [i >= 1] and [m >= 2]).  This is what lets
    obligations over triangular iteration spaces - LUD's interior
    write-race disjointness - go through. *)

val prove_pos : t -> Poly.t -> bool
val prove_le : t -> Poly.t -> Poly.t -> bool
val prove_lt : t -> Poly.t -> Poly.t -> bool
val prove_ge : t -> Poly.t -> Poly.t -> bool
val prove_gt : t -> Poly.t -> Poly.t -> bool

val prove_eq : t -> Poly.t -> Poly.t -> bool
(** Decided by normal-form identity after rewriting (sound and, for
    polynomial identities under the recorded equalities, complete). *)

val prove_nonzero : t -> Poly.t -> bool

(** {1 Footprint-in-bounds queries}

    Used by the memory-IR linter ({!Core.Memlint}) to discharge the
    obligation that an index function's footprint stays inside its
    memory block. *)

val prove_in_range : t -> Poly.t -> lo:Poly.t -> hi:Poly.t -> bool
(** [prove_in_range ctx p ~lo ~hi] proves [lo <= p <= hi] (inclusive on
    both ends); sufficient-condition semantics like every [prove_*]. *)

(** Three-valued range verdict: [Out_of_range] is itself a {e proof}
    (of [p < lo] or [p > hi]), not merely a failure to prove
    membership. *)
type range_verdict = In_range | Out_of_range | Undecided

val check_in_range : t -> Poly.t -> lo:Poly.t -> hi:Poly.t -> range_verdict

(** Decidable-sign summary. *)
type sign = Pos | Neg | Zero | Unknown

val sign : t -> Poly.t -> sign
val pp : Format.formatter -> t -> unit

(** {1 Memoization limits and statistics}

    The prover keeps two memo tables: saturated contexts and decided
    nonnegativity obligations.  Each is flushed wholesale when it
    outgrows its cap (bounded residency beats an eviction policy for
    the bursty obligation streams the pipeline produces). *)

type limits = { sat_cap : int; nonneg_cap : int }

val default_limits : limits
(** [{ sat_cap = 50_000; nonneg_cap = 500_000 }] - the former
    hard-coded reset thresholds. *)

val set_limits : limits -> unit
val get_limits : unit -> limits

(** {1 Resource budgets}

    A process-wide, per-query prover budget (CLI [--prover-budget]):
    [b_steps] caps the elimination searches (memo misses) any one
    [prove_*] query may spend ([-1] = unlimited; [0] refuses every
    query outright, so {e every} obligation comes back unproved);
    [b_memo] overrides the nonneg memo cap when nonnegative; a
    positive [b_deadline] installs a per-query CPU deadline via
    {!with_deadline}.  Exhaustion is sound - the query answers "not
    proved", the caller skips the rewrite - and is counted once per
    affected query in [stats ()].[budget_exhausted]. *)
type budget = { b_steps : int; b_memo : int; b_deadline : float }

val unlimited : budget
val set_budget : budget -> unit
val get_budget : unit -> budget

(** Cache effectiveness counters (process-wide, monotone until
    {!reset_stats}): a miss is a full saturation / elimination search,
    a reset discards the accumulated table. *)
type stats = {
  mutable sat_hits : int;
  mutable sat_misses : int;
  mutable sat_resets : int;
  mutable nonneg_hits : int;
  mutable nonneg_misses : int;
  mutable nonneg_resets : int;
  mutable budget_exhausted : int;
      (** Queries truncated by the step or deadline budget. *)
}

val stats : unit -> stats
(** A snapshot copy; safe to retain across further proving. *)

val reset_stats : unit -> unit
val pp_stats : Format.formatter -> stats -> unit
